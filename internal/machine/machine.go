// Package machine is a deterministic discrete-event simulator of a
// shared-memory multicore, standing in for the PARC lab hardware the
// paper's students measured on (a 64-core AMD Opteron 6272 server, a
// 16-core Xeon E7340 and an 8-core Xeon E5320 workstation, and quad-core
// Android devices; §III-B).
//
// The build host for this reproduction has a single CPU, so wall-clock
// speedup cannot be observed directly. The simulator executes the same
// scheduling policy as the real runtime — per-processor deques, LIFO owner
// access, FIFO stealing with a steal latency, or a contended global queue —
// over a virtual clock, so speedup curves, schedule comparisons and
// granularity crossovers are reproduced deterministically with the same
// *shape* the students reported, independent of host parallelism.
//
// Time is modelled in virtual nanoseconds. Task costs are supplied by the
// experiments (usually calibrated as "units of work x cost per unit").
package machine

import (
	"container/heap"
	"fmt"

	"parc751/internal/sched"
)

// Config describes a simulated machine.
type Config struct {
	Name          string
	Procs         int     // number of virtual processors
	SpeedFactor   float64 // relative per-core speed; 1.0 = reference core
	SpawnOverhead uint64  // virtual ns charged per task spawn
	StealLatency  uint64  // virtual ns charged per successful steal
	GlobalQueue   bool    // if true, use one contended FIFO (ablation A1)
	GlobalQueueNs uint64  // per-dequeue contention cost in global-queue mode
}

// The PARC machine presets (§III-B). Speed factors are the clock ratios of
// the real parts (Opteron 6272 @ 2.1 GHz, Xeon E7340 @ 2.4 GHz, Xeon E5320
// @ 1.86 GHz, a ~1.3 GHz Android SoC) normalised to the E7340.

// PARC64 models the 64-core AMD Opteron 6272 server.
func PARC64() Config {
	return Config{Name: "parc64", Procs: 64, SpeedFactor: 2.1 / 2.4,
		SpawnOverhead: 200, StealLatency: 600}
}

// PARC16 models the 16-core Intel Xeon E7340 workstation.
func PARC16() Config {
	return Config{Name: "parc16", Procs: 16, SpeedFactor: 1.0,
		SpawnOverhead: 150, StealLatency: 400}
}

// PARC8 models the 8-core Intel Xeon E5320 workstation.
func PARC8() Config {
	return Config{Name: "parc8", Procs: 8, SpeedFactor: 1.86 / 2.4,
		SpawnOverhead: 150, StealLatency: 400}
}

// AndroidQuad models a quad-core Android tablet/smartphone.
func AndroidQuad() Config {
	return Config{Name: "android4", Procs: 4, SpeedFactor: 1.3 / 2.4,
		SpawnOverhead: 400, StealLatency: 900}
}

// WithProcs returns a copy of c limited/expanded to p processors, used for
// core-count sweeps on one machine model.
func (c Config) WithProcs(p int) Config {
	c.Procs = p
	c.Name = fmt.Sprintf("%s-p%d", c.Name, p)
	return c
}

// Task is one unit of simulated work. Cost is in reference-core virtual
// nanoseconds (the simulator divides by the machine's SpeedFactor). Run,
// which may be nil, executes at the task's completion time and may spawn
// further tasks via the Ctx.
type Task struct {
	Cost uint64
	Run  func(ctx *Ctx)
	join *Join
}

// Join is a countdown latch in virtual time: when count tasks carrying the
// join have completed, the continuation task is released.
type Join struct {
	remaining int
	cont      *Task
}

// Ctx is passed to a task's Run hook at completion time.
type Ctx struct {
	m    *Machine
	proc int
	now  uint64
}

// Now returns the current virtual time in nanoseconds.
func (c *Ctx) Now() uint64 { return c.now }

// Proc returns the index of the virtual processor that ran the task.
func (c *Ctx) Proc() int { return c.proc }

// Spawn schedules a child task on the current processor's queue.
func (c *Ctx) Spawn(cost uint64, run func(*Ctx)) {
	c.m.push(c.proc, &Task{Cost: cost, Run: run}, c.now)
}

// SpawnJoined schedules a child task that participates in join j.
func (c *Ctx) SpawnJoined(j *Join, cost uint64, run func(*Ctx)) {
	c.m.push(c.proc, &Task{Cost: cost, Run: run, join: j}, c.now)
}

// NewJoin creates a join over n tasks; when all n complete, a continuation
// with the given cost and hook is released on the completing processor.
func (c *Ctx) NewJoin(n int, contCost uint64, cont func(*Ctx)) *Join {
	c.m.openJoins++
	return &Join{remaining: n, cont: &Task{Cost: contCost, Run: cont}}
}

// Stats summarises a simulation run.
type Stats struct {
	Makespan  uint64  // virtual ns from start to last completion
	BusyNs    uint64  // sum of task execution time across processors
	Steals    int64   // successful steals
	Spawns    int64   // tasks executed
	AvgUtil   float64 // BusyNs / (Makespan * Procs)
	PeakQueue int     // largest queue length observed
}

// event kinds
const (
	evIdle = iota // processor became idle and should look for work
	evDone        // processor finished the task it was running
)

type event struct {
	t      uint64
	seq    uint64 // tie-break for determinism
	kind   int
	proc   int
	task   *Task
	start  uint64 // execution start (evDone only, for tracing)
	stolen bool   // task was acquired by stealing (evDone only)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h eventHeap) peekTime() (uint64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].t, true
}

// Machine is one simulation instance. It is not safe for concurrent use;
// the simulation itself is sequential (that is the point: it reproduces
// parallel schedules on a serial host).
type Machine struct {
	cfg       Config
	deques    []*sched.Deque[Task]
	global    sched.FIFO[*Task]
	victims   *sched.RoundRobinVictims
	events    eventHeap
	seq       uint64
	idle      []bool
	pending   int // tasks queued or running
	openJoins int // joins created but not yet released
	stats     Stats
	trace     *Trace // nil unless EnableTrace was called
}

// New creates a machine from cfg. It panics on a non-positive processor
// count or speed factor, which would make simulated time meaningless.
func New(cfg Config) *Machine {
	if cfg.Procs <= 0 {
		panic("machine: Procs must be positive")
	}
	if cfg.SpeedFactor <= 0 {
		panic("machine: SpeedFactor must be positive")
	}
	m := &Machine{
		cfg:     cfg,
		deques:  make([]*sched.Deque[Task], cfg.Procs),
		victims: sched.NewRoundRobinVictims(cfg.Procs),
		idle:    make([]bool, cfg.Procs),
	}
	for i := range m.deques {
		m.deques[i] = sched.NewDeque[Task](64)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Submit queues a root task on processor proc%Procs before the run starts.
func (m *Machine) Submit(proc int, cost uint64, run func(*Ctx)) {
	m.push(proc%m.cfg.Procs, &Task{Cost: cost, Run: run}, 0)
}

// SubmitJoined queues a root task participating in join j.
func (m *Machine) SubmitJoined(proc int, j *Join, cost uint64, run func(*Ctx)) {
	m.push(proc%m.cfg.Procs, &Task{Cost: cost, Run: run, join: j}, 0)
}

// NewJoin creates a join usable with SubmitJoined before the run starts.
func (m *Machine) NewJoin(n int, contCost uint64, cont func(*Ctx)) *Join {
	m.openJoins++
	return &Join{remaining: n, cont: &Task{Cost: contCost, Run: cont}}
}

func (m *Machine) push(proc int, t *Task, now uint64) {
	m.pending++
	if m.cfg.GlobalQueue {
		m.global.Push(t)
		if q := m.global.Len(); q > m.stats.PeakQueue {
			m.stats.PeakQueue = q
		}
	} else {
		m.deques[proc].PushBottom(t)
		if q := m.deques[proc].Len(); q > m.stats.PeakQueue {
			m.stats.PeakQueue = q
		}
	}
	// Wake idle processors: they retry at the current instant.
	for p := 0; p < m.cfg.Procs; p++ {
		if m.idle[p] {
			m.idle[p] = false
			m.post(event{t: now, kind: evIdle, proc: p})
		}
	}
}

func (m *Machine) post(e event) {
	e.seq = m.seq
	m.seq++
	heap.Push(&m.events, e)
}

// acquire tries to obtain a task for processor p at time t, returning the
// task, the virtual time at which execution can begin (acquisition
// overheads included), and whether the task was stolen.
func (m *Machine) acquire(p int, t uint64) (task *Task, start uint64, stolen, ok bool) {
	if m.cfg.GlobalQueue {
		if task, ok := m.global.Pop(); ok {
			return task, t + m.cfg.GlobalQueueNs, false, true
		}
		return nil, 0, false, false
	}
	if task, ok := m.deques[p].PopBottom(); ok {
		return task, t, false, true
	}
	// One steal round: try every other processor once, deterministically.
	for i := 1; i < m.cfg.Procs; i++ {
		v := m.victims.Next(p)
		if task, ok := m.deques[v].Steal(); ok {
			m.stats.Steals++
			return task, t + m.cfg.StealLatency, true, true
		}
	}
	return nil, 0, false, false
}

// Run executes the simulation to completion and returns the statistics.
// It panics if called twice on the same Machine.
func (m *Machine) Run() Stats {
	for p := 0; p < m.cfg.Procs; p++ {
		m.post(event{t: 0, kind: evIdle, proc: p})
	}
	for m.events.Len() > 0 {
		e := heap.Pop(&m.events).(event)
		switch e.kind {
		case evIdle:
			if m.idle[e.proc] {
				continue // already parked; a wake event will reactivate it
			}
			task, start, stolen, ok := m.acquire(e.proc, e.t)
			if !ok {
				m.idle[e.proc] = true
				continue
			}
			dur := uint64(float64(task.Cost) / m.cfg.SpeedFactor)
			m.stats.BusyNs += dur
			m.post(event{t: start + dur, kind: evDone, proc: e.proc, task: task,
				start: start, stolen: stolen})
		case evDone:
			m.pending--
			m.stats.Spawns++
			if e.t > m.stats.Makespan {
				m.stats.Makespan = e.t
			}
			if m.trace != nil {
				m.trace.Spans = append(m.trace.Spans,
					Span{Proc: e.proc, Start: e.start, End: e.t, Stolen: e.stolen})
			}
			nextFree := e.t
			if e.task.Run != nil {
				ctx := &Ctx{m: m, proc: e.proc, now: e.t}
				before := m.pending
				e.task.Run(ctx)
				spawned := m.pending - before
				if spawned > 0 {
					nextFree += uint64(spawned) * m.cfg.SpawnOverhead
				}
			}
			if j := e.task.join; j != nil {
				j.remaining--
				if j.remaining == 0 {
					m.openJoins--
					m.push(e.proc, j.cont, e.t)
				}
			}
			m.post(event{t: nextFree, kind: evIdle, proc: e.proc})
		}
	}
	if m.pending != 0 {
		panic(fmt.Sprintf("machine: %d tasks never ran", m.pending))
	}
	if m.openJoins != 0 {
		panic(fmt.Sprintf("machine: %d joins never released (too few joined tasks completed)", m.openJoins))
	}
	if m.stats.Makespan > 0 {
		m.stats.AvgUtil = float64(m.stats.BusyNs) /
			(float64(m.stats.Makespan) * float64(m.cfg.Procs))
	}
	return m.stats
}

// RunTasks is a convenience: simulate independent tasks with the given
// costs (a parallel-for with one task per element) and return the stats.
// Tasks are seeded round-robin across processors when static is true, or
// all onto processor 0 (from where they get stolen — the dynamic
// work-stealing pattern) when static is false.
func RunTasks(cfg Config, costs []uint64, static bool) Stats {
	m := New(cfg)
	for i, c := range costs {
		p := 0
		if static {
			p = i % cfg.Procs
		}
		m.Submit(p, c, nil)
	}
	return m.Run()
}

// SequentialTime returns the virtual time a single reference-speed core
// would need for the given costs — the baseline for speedup computations.
func SequentialTime(costs []uint64) uint64 {
	var sum uint64
	for _, c := range costs {
		sum += c
	}
	return sum
}
