package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one executed task interval on a virtual processor.
type Span struct {
	Proc   int
	Start  uint64
	End    uint64
	Stolen bool // acquired by stealing rather than from the own deque
}

// Trace records the schedule a simulation produced, enabling the Gantt
// rendering used to teach scheduling behaviour (idle bubbles, steal
// migration, stragglers).
type Trace struct {
	Procs int
	Spans []Span
}

// EnableTrace turns on span recording for this machine. Call before Run.
func (m *Machine) EnableTrace() {
	m.trace = &Trace{Procs: m.cfg.Procs}
}

// Trace returns the recorded trace (nil unless EnableTrace was called).
func (m *Machine) Trace() *Trace { return m.trace }

// BusyPerProc sums executed time per processor.
func (t *Trace) BusyPerProc() []uint64 {
	busy := make([]uint64, t.Procs)
	for _, s := range t.Spans {
		busy[s.Proc] += s.End - s.Start
	}
	return busy
}

// StolenCount reports how many spans were acquired by stealing.
func (t *Trace) StolenCount() int {
	n := 0
	for _, s := range t.Spans {
		if s.Stolen {
			n++
		}
	}
	return n
}

// Gantt renders an ASCII Gantt chart with the given width in columns.
// '#' marks own work, 'S' stolen work, '.' idle.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	var makespan uint64
	for _, s := range t.Spans {
		if s.End > makespan {
			makespan = s.End
		}
	}
	if makespan == 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, t.Procs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	spans := append([]Span(nil), t.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		lo := int(s.Start * uint64(width) / makespan)
		hi := int(s.End * uint64(width) / makespan)
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		mark := byte('#')
		if s.Stolen {
			mark = 'S'
		}
		for c := lo; c < hi; c++ {
			rows[s.Proc][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gantt (makespan %d virtual ns; # own, S stolen, . idle)\n", makespan)
	for p, row := range rows {
		fmt.Fprintf(&b, "p%02d |%s|\n", p, row)
	}
	return b.String()
}
