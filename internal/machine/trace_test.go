package machine

import (
	"strings"
	"testing"
)

func TestTraceRecordsSpans(t *testing.T) {
	m := New(refConfig(4))
	m.EnableTrace()
	for i := 0; i < 16; i++ {
		m.Submit(0, 1000, nil)
	}
	st := m.Run()
	tr := m.Trace()
	if tr == nil {
		t.Fatal("no trace")
	}
	if len(tr.Spans) != 16 {
		t.Fatalf("spans = %d, want 16", len(tr.Spans))
	}
	var busy uint64
	for _, s := range tr.Spans {
		if s.End <= s.Start {
			t.Fatalf("empty span %+v", s)
		}
		if s.Proc < 0 || s.Proc >= 4 {
			t.Fatalf("span proc %d", s.Proc)
		}
		busy += s.End - s.Start
	}
	if busy != st.BusyNs {
		t.Fatalf("trace busy %d != stats busy %d", busy, st.BusyNs)
	}
}

func TestTraceStealsMatchStats(t *testing.T) {
	m := New(refConfig(4))
	m.EnableTrace()
	for i := 0; i < 32; i++ {
		m.Submit(0, 500, nil) // all on proc 0: others must steal
	}
	st := m.Run()
	if got := int64(m.Trace().StolenCount()); got != st.Steals {
		t.Fatalf("trace steals %d != stats steals %d", got, st.Steals)
	}
	if st.Steals == 0 {
		t.Fatal("expected steals")
	}
}

func TestBusyPerProc(t *testing.T) {
	m := New(refConfig(2))
	m.EnableTrace()
	for i := 0; i < 8; i++ {
		m.Submit(i, 100, nil)
	}
	m.Run()
	busy := m.Trace().BusyPerProc()
	if len(busy) != 2 {
		t.Fatalf("per-proc entries = %d", len(busy))
	}
	if busy[0]+busy[1] != 800 {
		t.Fatalf("total busy = %d", busy[0]+busy[1])
	}
}

func TestGanttRendering(t *testing.T) {
	m := New(refConfig(3))
	m.EnableTrace()
	for i := 0; i < 9; i++ {
		m.Submit(0, 1000, nil)
	}
	m.Run()
	g := m.Trace().Gantt(40)
	if !strings.Contains(g, "p00") || !strings.Contains(g, "p02") {
		t.Fatalf("gantt missing processor rows:\n%s", g)
	}
	if !strings.Contains(g, "#") {
		t.Fatalf("gantt shows no work:\n%s", g)
	}
	if !strings.Contains(g, "S") {
		t.Fatalf("gantt shows no steals despite proc-0 seeding:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 4 { // header + 3 procs
		t.Fatalf("gantt line count = %d:\n%s", len(lines), g)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := &Trace{Procs: 2}
	if !strings.Contains(tr.Gantt(20), "empty") {
		t.Fatal("empty trace not reported")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(refConfig(1))
	m.Submit(0, 10, nil)
	m.Run()
	if m.Trace() != nil {
		t.Fatal("trace enabled without EnableTrace")
	}
}
