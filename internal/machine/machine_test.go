package machine

import (
	"testing"
	"testing/quick"

	"parc751/internal/metrics"
)

func equalCosts(n int, c uint64) []uint64 {
	costs := make([]uint64, n)
	for i := range costs {
		costs[i] = c
	}
	return costs
}

func refConfig(p int) Config {
	return Config{Name: "ref", Procs: p, SpeedFactor: 1.0}
}

func TestPerfectSpeedupNoOverhead(t *testing.T) {
	costs := equalCosts(64, 1000)
	seq := SequentialTime(costs)
	for _, p := range []int{1, 2, 4, 8} {
		st := RunTasks(refConfig(p), costs, true)
		want := seq / uint64(p)
		if st.Makespan != want {
			t.Errorf("p=%d makespan = %d, want %d", p, st.Makespan, want)
		}
		if s := metrics.Speedup(float64(seq), float64(st.Makespan)); s != float64(p) {
			t.Errorf("p=%d speedup = %g", p, s)
		}
	}
}

func TestSingleProcMatchesSequential(t *testing.T) {
	costs := []uint64{10, 20, 30, 40}
	st := RunTasks(refConfig(1), costs, true)
	if st.Makespan != SequentialTime(costs) {
		t.Errorf("makespan = %d, want %d", st.Makespan, SequentialTime(costs))
	}
	if st.AvgUtil < 0.999 {
		t.Errorf("single-proc utilisation = %g, want ~1", st.AvgUtil)
	}
}

func TestSpeedupMonotoneInProcs(t *testing.T) {
	costs := equalCosts(256, 500)
	prev := ^uint64(0)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		st := RunTasks(PARC64().WithProcs(p), costs, false)
		if st.Makespan > prev {
			t.Errorf("p=%d makespan %d worse than fewer procs %d", p, st.Makespan, prev)
		}
		prev = st.Makespan
	}
}

func TestAmdahlTail(t *testing.T) {
	// One long task dominates: makespan can never go below it.
	costs := append(equalCosts(63, 100), 100000)
	st := RunTasks(refConfig(64), costs, false)
	if st.Makespan < 100000 {
		t.Errorf("makespan %d beat the critical path", st.Makespan)
	}
	// And with many procs it should be close to the critical path plus at
	// most a small scheduling delay.
	if st.Makespan > 101000 {
		t.Errorf("makespan %d far above critical path", st.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	costs := make([]uint64, 200)
	for i := range costs {
		costs[i] = uint64(100 + 37*i%977)
	}
	a := RunTasks(PARC16(), costs, false)
	b := RunTasks(PARC16(), costs, false)
	if a != b {
		t.Fatalf("same simulation differed:\n%+v\n%+v", a, b)
	}
}

func TestStealingHappensFromProcZeroSeed(t *testing.T) {
	costs := equalCosts(64, 1000)
	st := RunTasks(refConfig(8), costs, false) // all seeded on proc 0
	if st.Steals == 0 {
		t.Error("expected steals when all work starts on one processor")
	}
	// Work should still spread: makespan far below sequential.
	if st.Makespan >= SequentialTime(costs) {
		t.Errorf("no parallelism achieved: %d", st.Makespan)
	}
}

func TestStealLatencySlowsDynamic(t *testing.T) {
	costs := equalCosts(128, 1000)
	fast := Config{Name: "fast", Procs: 8, SpeedFactor: 1, StealLatency: 0}
	slow := Config{Name: "slow", Procs: 8, SpeedFactor: 1, StealLatency: 5000}
	a := RunTasks(fast, costs, false)
	b := RunTasks(slow, costs, false)
	if b.Makespan <= a.Makespan {
		t.Errorf("steal latency had no cost: fast=%d slow=%d", a.Makespan, b.Makespan)
	}
}

func TestGlobalQueueContentionCost(t *testing.T) {
	costs := equalCosts(512, 200) // many small tasks
	ws := Config{Name: "ws", Procs: 16, SpeedFactor: 1, StealLatency: 100}
	gq := Config{Name: "gq", Procs: 16, SpeedFactor: 1, GlobalQueue: true, GlobalQueueNs: 300}
	a := RunTasks(ws, costs, true)
	b := RunTasks(gq, costs, true)
	if b.Makespan <= a.Makespan {
		t.Errorf("global queue should lose on small tasks: ws=%d gq=%d", a.Makespan, b.Makespan)
	}
}

func TestSpeedFactorScalesTime(t *testing.T) {
	costs := equalCosts(16, 2400)
	full := RunTasks(Config{Name: "a", Procs: 4, SpeedFactor: 1}, costs, true)
	half := RunTasks(Config{Name: "b", Procs: 4, SpeedFactor: 0.5}, costs, true)
	if half.Makespan != 2*full.Makespan {
		t.Errorf("half-speed makespan = %d, want %d", half.Makespan, 2*full.Makespan)
	}
}

func TestJoinReleasesContinuation(t *testing.T) {
	m := New(refConfig(4))
	done := false
	var order []string
	j := m.NewJoin(3, 50, func(ctx *Ctx) {
		done = true
		order = append(order, "cont")
	})
	for i := 0; i < 3; i++ {
		m.SubmitJoined(i, j, 100, func(ctx *Ctx) { order = append(order, "child") })
	}
	st := m.Run()
	if !done {
		t.Fatal("continuation never ran")
	}
	if order[len(order)-1] != "cont" {
		t.Fatalf("continuation did not run last: %v", order)
	}
	if st.Spawns != 4 {
		t.Errorf("Spawns = %d, want 4", st.Spawns)
	}
	// Children run in parallel (3 procs), then the continuation:
	// 100 + 50 = 150 plus nothing else.
	if st.Makespan != 150 {
		t.Errorf("makespan = %d, want 150", st.Makespan)
	}
}

func TestRecursiveSpawnDivideAndConquer(t *testing.T) {
	// A binary recursive decomposition of 64 leaves, like parallel
	// quicksort: internal nodes spawn two children.
	m := New(refConfig(8))
	leaves := 0
	var spawn func(ctx *Ctx, n int)
	spawn = func(ctx *Ctx, n int) {
		if n == 1 {
			leaves++
			return
		}
		ctx.Spawn(100, func(c *Ctx) { spawn(c, n/2) })
		ctx.Spawn(100, func(c *Ctx) { spawn(c, n-n/2) })
	}
	m.Submit(0, 100, func(ctx *Ctx) { spawn(ctx, 64) })
	st := m.Run()
	if leaves != 64 {
		t.Fatalf("leaves = %d, want 64", leaves)
	}
	if st.Spawns != 127 { // 64 leaves + 63 internal
		t.Errorf("Spawns = %d, want 127", st.Spawns)
	}
}

func TestSpawnOverheadCharged(t *testing.T) {
	// A root task that spawns k children delays its processor by
	// k*SpawnOverhead before it can pick up new work.
	cfg := Config{Name: "ov", Procs: 1, SpeedFactor: 1, SpawnOverhead: 10}
	m := New(cfg)
	m.Submit(0, 100, func(ctx *Ctx) {
		for i := 0; i < 5; i++ {
			ctx.Spawn(100, nil)
		}
	})
	st := m.Run()
	// 100 (root) + 5*10 (spawn overhead) + 5*100 (children serially).
	if st.Makespan != 650 {
		t.Errorf("makespan = %d, want 650", st.Makespan)
	}
}

func TestCtxExposesProcAndTime(t *testing.T) {
	m := New(refConfig(1))
	var now uint64
	proc := -1
	m.Submit(0, 123, func(ctx *Ctx) {
		now = ctx.Now()
		proc = ctx.Proc()
	})
	m.Run()
	if now != 123 {
		t.Errorf("Now = %d, want 123", now)
	}
	if proc != 0 {
		t.Errorf("Proc = %d, want 0", proc)
	}
}

func TestUnreleasedJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unreleased join")
		}
	}()
	m := New(refConfig(2))
	j := m.NewJoin(5, 0, nil) // five expected, only one submitted
	m.SubmitJoined(0, j, 10, nil)
	m.Run()
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Procs: 0, SpeedFactor: 1},
		{Procs: 4, SpeedFactor: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPresetsAreSane(t *testing.T) {
	for _, cfg := range []Config{PARC64(), PARC16(), PARC8(), AndroidQuad()} {
		if cfg.Procs <= 0 || cfg.SpeedFactor <= 0 || cfg.Name == "" {
			t.Errorf("preset %+v malformed", cfg)
		}
	}
	if PARC64().Procs != 64 || PARC16().Procs != 16 || PARC8().Procs != 8 || AndroidQuad().Procs != 4 {
		t.Error("preset core counts wrong")
	}
	w := PARC64().WithProcs(8)
	if w.Procs != 8 || w.Name != "parc64-p8" {
		t.Errorf("WithProcs = %+v", w)
	}
}

func TestUtilisationBounded(t *testing.T) {
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%16) + 1
		n := int(nRaw%128) + 1
		costs := make([]uint64, n)
		x := seed
		for i := range costs {
			x = x*6364136223846793005 + 1442695040888963407
			costs[i] = 100 + x%10000
		}
		st := RunTasks(Config{Name: "q", Procs: p, SpeedFactor: 1, StealLatency: 50}, costs, false)
		return st.AvgUtil > 0 && st.AvgUtil <= 1.0000001 &&
			st.Makespan >= SequentialTime(costs)/uint64(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan >= max(total/p, max task cost) for any schedule.
	costs := []uint64{5000, 100, 100, 100, 100, 100, 100, 100}
	st := RunTasks(refConfig(4), costs, false)
	if st.Makespan < 5000 {
		t.Errorf("makespan %d below longest task", st.Makespan)
	}
	total := SequentialTime(costs)
	if st.Makespan < total/4 {
		t.Errorf("makespan %d below work bound %d", st.Makespan, total/4)
	}
}

func BenchmarkSimulate1kTasks8Procs(b *testing.B) {
	costs := equalCosts(1000, 500)
	cfg := PARC8()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTasks(cfg, costs, false)
	}
}

func BenchmarkSimulate64Procs(b *testing.B) {
	costs := equalCosts(4096, 300)
	cfg := PARC64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTasks(cfg, costs, true)
	}
}
