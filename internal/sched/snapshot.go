package sched

import (
	"fmt"
	"strings"

	"parc751/internal/metrics"
)

// WorkerSnapshot is one worker's scheduler traffic at a point in time:
// its deque counters plus how often it parked (went idle with no work
// anywhere) and was woken by a targeted submit-side wakeup.
type WorkerSnapshot struct {
	ID int
	DequeStats
	Parks int64
	Wakes int64
}

// Snapshot is the pool-wide scheduler state exposed through
// core.Pool.Stats: per-worker traffic, global-queue activity, task
// accounting, and the sampled submit→start latency distribution. It is
// the observable-scheduler surface motivated by TEMANEJO-style debugging:
// internals as first-class data rather than opaque counters.
type Snapshot struct {
	Workers []WorkerSnapshot

	// GlobalDepth is the global FIFO's depth when the snapshot was taken;
	// GlobalSubmits counts external submissions routed to it.
	GlobalDepth   int
	GlobalSubmits int64

	// Queued is the advisory count of enqueued-but-not-yet-taken tasks;
	// Inflight counts queued + running; Executed counts finished tasks.
	Queued   int64
	Inflight int64
	Executed int64

	// Abandoned counts tasks given up on by a timed shutdown
	// (core.Pool.ShutdownTimeout): queued work that was never run plus
	// wedged tasks that were still running when the pool stopped waiting.
	// It is a live count — a left-behind worker that eventually finishes
	// its task drops it back out — and zero on every clean shutdown.
	Abandoned int64

	// SubmitLatency is the sampled submit→start latency distribution.
	SubmitLatency metrics.LatencySnapshot
}

// TotalSteals sums successful steals across workers.
func (s Snapshot) TotalSteals() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Steals
	}
	return n
}

// TotalPushes sums deque pushes (worker-side submissions) across workers.
func (s Snapshot) TotalPushes() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Pushes
	}
	return n
}

// TotalParks sums park events across workers.
func (s Snapshot) TotalParks() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Parks
	}
	return n
}

// String renders the snapshot as the plain-text table printed by
// `parcbench -schedstats`.
func (s Snapshot) String() string {
	tab := metrics.NewTable("Scheduler snapshot (per worker)",
		"worker", "pushes", "pops", "steals", "batch-moved", "failed-steals", "parks", "wakes")
	for _, w := range s.Workers {
		tab.AddRow(w.ID, w.Pushes, w.Pops, w.Steals, w.BatchMoved, w.FailedSteal, w.Parks, w.Wakes)
	}
	var b strings.Builder
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "global queue: depth=%d submits=%d | queued=%d inflight=%d executed=%d abandoned=%d\n",
		s.GlobalDepth, s.GlobalSubmits, s.Queued, s.Inflight, s.Executed, s.Abandoned)
	fmt.Fprintf(&b, "submit→start latency (sampled): %s\n", s.SubmitLatency.String())
	return b.String()
}
