// Fuzz and property tests for the Chase–Lev deque — the scheduler's
// most delicate structure. Two targets:
//
//   - FuzzDequeOps model-checks the sequential contract against a plain
//     slice: any interleaving of owner pushes and pops plus (on the
//     owner goroutine, hence race-free) steals must behave like a
//     double-ended queue — pops LIFO from the bottom, steals FIFO from
//     the top.
//   - FuzzDequeConcurrent drives the real concurrent shape — one owner
//     pushing and popping, several thieves stealing — and checks the
//     conservation law that makes work stealing correct: every pushed
//     task is extracted exactly once (nothing lost, nothing duplicated).
//
// Seed corpora live in testdata/fuzz/<target>/; plain `go test` replays
// them automatically, so CI exercises both targets without -fuzz.
package sched

import (
	"sync"
	"testing"
)

// FuzzDequeOps interprets ops as a program over the deque and a model
// slice: byte%3==0 → PushBottom, ==1 → PopBottom, ==2 → Steal. All ops
// run on one goroutine — Steal is linearizable from anywhere, and the
// owner calling it gives a deterministic sequential model.
func FuzzDequeOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 2, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{2, 1, 0})
	// Push storms drive growth past the initial ring capacity.
	grow := make([]byte, 300)
	for i := range grow {
		grow[i] = 0
	}
	f.Add(grow)
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := NewDeque[int](8) // small initial ring: growth paths get hit
		var model []int       // model[0] is the top (steal end)
		next := 0
		for pc, op := range ops {
			switch op % 3 {
			case 0:
				d.PushBottom(next)
				model = append(model, next)
				next++
			case 1:
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: PopBottom returned %d from an empty deque", pc, v)
					}
					continue
				}
				want := model[len(model)-1]
				if !ok {
					t.Fatalf("op %d: PopBottom empty, model has %d items", pc, len(model))
				}
				if v != want {
					t.Fatalf("op %d: PopBottom = %d, want LIFO %d", pc, v, want)
				}
				model = model[:len(model)-1]
			case 2:
				v, ok := d.Steal()
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: Steal returned %d from an empty deque", pc, v)
					}
					continue
				}
				want := model[0]
				if !ok {
					t.Fatalf("op %d: Steal empty, model has %d items", pc, len(model))
				}
				if v != want {
					t.Fatalf("op %d: Steal = %d, want FIFO %d", pc, v, want)
				}
				model = model[1:]
			}
			if got, want := d.Len(), len(model); got != want {
				t.Fatalf("op %d: Len = %d, model %d", pc, got, want)
			}
		}
		// Drain and check the leftover suffix in steal (FIFO) order.
		for _, want := range model {
			v, ok := d.Steal()
			if !ok || v != want {
				t.Fatalf("drain: Steal = (%d, %v), want (%d, true)", v, ok, want)
			}
		}
		if _, ok := d.Steal(); ok {
			t.Fatal("drain: deque not empty after model drained")
		}
	})
}

// FuzzDequeConcurrent: ops drives the owner (push/pop mix and pacing)
// while nthieves goroutines steal continuously. Afterwards the multiset
// of extracted values must be exactly {0..pushed-1}: no task lost, none
// run twice.
func FuzzDequeConcurrent(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 0, 1, 1}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(4))
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1}, uint8(1))
	many := make([]byte, 400)
	for i := range many {
		if i%5 == 4 {
			many[i] = 1
		}
	}
	f.Add(many, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, nthieves uint8) {
		thieves := int(nthieves%4) + 1
		d := NewDeque[int](8)

		var mu sync.Mutex
		got := map[int]int{} // value → times extracted
		take := func(v int) {
			mu.Lock()
			got[v]++
			mu.Unlock()
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < thieves; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if v, ok := d.Steal(); ok {
						take(v)
						continue
					}
					select {
					case <-done:
						// One last sweep: the owner may have pushed between
						// our failed steal and the close.
						for {
							v, ok := d.Steal()
							if !ok {
								return
							}
							take(v)
						}
					default:
					}
				}
			}()
		}

		pushed := 0
		for _, op := range ops {
			if op%2 == 0 {
				d.PushBottom(pushed)
				pushed++
			} else {
				if v, ok := d.PopBottom(); ok {
					take(v)
				}
			}
		}
		// Owner drains what it can; thieves race it for the rest.
		for {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			take(v)
		}
		close(done)
		wg.Wait()

		mu.Lock()
		defer mu.Unlock()
		for v := 0; v < pushed; v++ {
			switch got[v] {
			case 1:
			case 0:
				t.Fatalf("task %d lost (pushed %d, thieves %d)", v, pushed, thieves)
			default:
				t.Fatalf("task %d extracted %d times (pushed %d, thieves %d)", v, got[v], pushed, thieves)
			}
		}
		if len(got) != pushed {
			t.Fatalf("extracted %d distinct values, pushed %d", len(got), pushed)
		}
	})
}
