// Fuzz and property tests for the Chase–Lev deque — the scheduler's
// most delicate structure. Two targets:
//
//   - FuzzDequeOps model-checks the sequential contract against a plain
//     slice: any interleaving of owner pushes and pops plus (on the
//     owner goroutine, hence race-free) steals and batch steals must
//     behave like a double-ended queue — pops LIFO from the bottom,
//     steals FIFO from the top, and StealInto a FIFO prefix transfer.
//   - FuzzDequeConcurrent drives the real concurrent shape — one owner
//     pushing and popping, several thieves stealing (half of them in
//     batches via StealInto) — and checks the conservation law that
//     makes work stealing correct: every pushed task is extracted
//     exactly once (nothing lost, nothing duplicated).
//
// Seed corpora live in testdata/fuzz/<target>/; plain `go test` replays
// them automatically, so CI exercises both targets without -fuzz. The
// committed seeds are ASCII-digit programs, so moving from op%3 to op%4
// left every existing seed's meaning unchanged ('0'..'2' map to the same
// ops mod 3 and mod 4); '3' bytes now reach the batch-steal path.
package sched

import (
	"sync"
	"testing"
)

// FuzzDequeOps interprets ops as a program over the deque and a model
// slice: byte%4==0 → PushBottom, ==1 → PopBottom, ==2 → Steal,
// ==3 → StealInto a scratch deque (drained and checked immediately).
// All ops run on one goroutine — Steal/StealInto are linearizable from
// anywhere, and the owner calling them gives a deterministic sequential
// model: with no racing thieves, StealInto must move exactly the first
// element plus half the remainder (capped), in FIFO order.
func FuzzDequeOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 2, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{2, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 3, 1, 3, 2})
	f.Add([]byte("000000000000000000000000000000000000000033"))
	// Push storms drive growth past the initial ring capacity.
	grow := make([]byte, 300)
	for i := range grow {
		grow[i] = 0
	}
	f.Add(grow)
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := NewDeque[int](8) // small initial ring: growth paths get hit
		var model []int       // model[0] is the top (steal end)
		next := 0
		for pc, op := range ops {
			switch op % 4 {
			case 0:
				v := next
				d.PushBottom(&v)
				model = append(model, next)
				next++
			case 1:
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: PopBottom returned %d from an empty deque", pc, *v)
					}
					continue
				}
				want := model[len(model)-1]
				if !ok {
					t.Fatalf("op %d: PopBottom empty, model has %d items", pc, len(model))
				}
				if *v != want {
					t.Fatalf("op %d: PopBottom = %d, want LIFO %d", pc, *v, want)
				}
				model = model[:len(model)-1]
			case 2:
				v, ok := d.Steal()
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: Steal returned %d from an empty deque", pc, *v)
					}
					continue
				}
				want := model[0]
				if !ok {
					t.Fatalf("op %d: Steal empty, model has %d items", pc, len(model))
				}
				if *v != want {
					t.Fatalf("op %d: Steal = %d, want FIFO %d", pc, *v, want)
				}
				model = model[1:]
			case 3:
				dst := NewDeque[int](8)
				v, ok := d.StealInto(dst)
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: StealInto returned %d from an empty deque", pc, *v)
					}
					continue
				}
				if !ok {
					t.Fatalf("op %d: StealInto empty, model has %d items", pc, len(model))
				}
				if *v != model[0] {
					t.Fatalf("op %d: StealInto first = %d, want FIFO %d", pc, *v, model[0])
				}
				// With no racing thieves the batch size is deterministic:
				// half of what remained after the first, capped.
				wantMoved := len(model) / 2
				if wantMoved > stealHalfCap {
					wantMoved = stealHalfCap
				}
				if dst.Len() != wantMoved {
					t.Fatalf("op %d: StealInto moved %d, want %d (model %d)", pc, dst.Len(), wantMoved, len(model))
				}
				for i := 1; i <= wantMoved; i++ {
					mv, ok := dst.Steal()
					if !ok || *mv != model[i] {
						t.Fatalf("op %d: batch order broken at %d: got %v,%v want %d", pc, i, mv, ok, model[i])
					}
				}
				model = model[1+wantMoved:]
			}
			if got, want := d.Len(), len(model); got != want {
				t.Fatalf("op %d: Len = %d, model %d", pc, got, want)
			}
		}
		// Drain and check the leftover suffix in steal (FIFO) order.
		for _, want := range model {
			v, ok := d.Steal()
			if !ok || *v != want {
				t.Fatalf("drain: Steal = (%v, %v), want (%d, true)", v, ok, want)
			}
		}
		if _, ok := d.Steal(); ok {
			t.Fatal("drain: deque not empty after model drained")
		}
	})
}

// FuzzDequeConcurrent: ops drives the owner (push/pop mix and pacing)
// while nthieves goroutines steal continuously — even-numbered thieves
// one at a time, odd-numbered thieves in batches through their own dst
// deque. Afterwards the multiset of extracted values must be exactly
// {0..pushed-1}: no task lost, none run twice.
func FuzzDequeConcurrent(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 0, 1, 1}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(4))
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1}, uint8(1))
	many := make([]byte, 400)
	for i := range many {
		if i%5 == 4 {
			many[i] = 1
		}
	}
	f.Add(many, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, nthieves uint8) {
		thieves := int(nthieves%4) + 1
		d := NewDeque[int](8)

		var mu sync.Mutex
		got := map[int]int{} // value → times extracted
		take := func(v int) {
			mu.Lock()
			got[v]++
			mu.Unlock()
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < thieves; i++ {
			batch := i%2 == 1
			wg.Add(1)
			go func() {
				defer wg.Done()
				var dst *Deque[int]
				if batch {
					dst = NewDeque[int](8)
				}
				drain := func() {
					if dst == nil {
						return
					}
					for {
						v, ok := dst.PopBottom()
						if !ok {
							return
						}
						take(*v)
					}
				}
				for {
					if v, ok := d.StealInto(dst); ok {
						take(*v)
						drain()
						continue
					}
					select {
					case <-done:
						// One last sweep: the owner may have pushed between
						// our failed steal and the close.
						for {
							v, ok := d.StealInto(dst)
							if !ok {
								drain()
								return
							}
							take(*v)
							drain()
						}
					default:
					}
				}
			}()
		}

		pushed := 0
		for _, op := range ops {
			if op%2 == 0 {
				v := pushed
				d.PushBottom(&v)
				pushed++
			} else {
				if v, ok := d.PopBottom(); ok {
					take(*v)
				}
			}
		}
		// Owner drains what it can; thieves race it for the rest.
		for {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			take(*v)
		}
		close(done)
		wg.Wait()

		mu.Lock()
		defer mu.Unlock()
		for v := 0; v < pushed; v++ {
			switch got[v] {
			case 1:
			case 0:
				t.Fatalf("task %d lost (pushed %d, thieves %d)", v, pushed, thieves)
			default:
				t.Fatalf("task %d extracted %d times (pushed %d, thieves %d)", v, got[v], pushed, thieves)
			}
		}
		if len(got) != pushed {
			t.Fatalf("extracted %d distinct values, pushed %d", len(got), pushed)
		}
	})
}
