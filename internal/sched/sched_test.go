package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

// ptr boxes a test value for the pointer-element deque API.
func ptr(v int) *int { return &v }

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 10; i++ {
		d.PushBottom(ptr(i))
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || *v != i {
			t.Fatalf("PopBottom = %v,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestDequeFIFOThief(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 10; i++ {
		d.PushBottom(ptr(i))
	}
	for i := 0; i < 10; i++ {
		v, ok := d.Steal()
		if !ok || *v != i {
			t.Fatalf("Steal = %v,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestDequeMixedEnds(t *testing.T) {
	d := NewDeque[int](2)
	d.PushBottom(ptr(1))
	d.PushBottom(ptr(2))
	d.PushBottom(ptr(3))
	if v, ok := d.Steal(); !ok || *v != 1 {
		t.Fatalf("steal got %v, want 1", v)
	}
	if v, ok := d.PopBottom(); !ok || *v != 3 {
		t.Fatalf("pop got %v, want 3", v)
	}
	if v, ok := d.Steal(); !ok || *v != 2 {
		t.Fatalf("steal got %v, want 2", v)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDequeGrowthPreservesOrder(t *testing.T) {
	// Force wrap-around then growth: interleave pushes and steals.
	d := NewDeque[int](4)
	next := 0
	expectSteal := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			d.PushBottom(ptr(next))
			next++
		}
		v, ok := d.Steal()
		if !ok || *v != expectSteal {
			t.Fatalf("round %d: steal = %v,%v want %d", round, v, ok, expectSteal)
		}
		expectSteal++
	}
	// Drain remaining with steals: must be strictly increasing.
	prev := expectSteal - 1
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		if *v != prev+1 {
			t.Fatalf("steal order broken: got %d after %d", *v, prev)
		}
		prev = *v
	}
}

// Property: any interleaving of pushes, pops and steals conserves elements
// (no loss, no duplication).
func TestDequeConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDeque[int](2)
		pushed := map[int]bool{}
		removed := map[int]bool{}
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				d.PushBottom(ptr(next))
				pushed[next] = true
				next++
			case 1:
				if v, ok := d.PopBottom(); ok {
					if removed[*v] || !pushed[*v] {
						return false
					}
					removed[*v] = true
				}
			case 2:
				if v, ok := d.Steal(); ok {
					if removed[*v] || !pushed[*v] {
						return false
					}
					removed[*v] = true
				}
			}
		}
		for {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			if removed[*v] || !pushed[*v] {
				return false
			}
			removed[*v] = true
		}
		return len(removed) == len(pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDequeConcurrentOwnerAndThieves(t *testing.T) {
	d := NewDeque[int](8)
	const n = 10000
	var got sync.Map
	var wg sync.WaitGroup
	// Owner pushes then pops half.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.PushBottom(ptr(i))
			if i%2 == 1 {
				if v, ok := d.PopBottom(); ok {
					if _, dup := got.LoadOrStore(*v, true); dup {
						t.Errorf("duplicate element %d", *v)
					}
				}
			}
		}
	}()
	// Thieves steal concurrently.
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if v, ok := d.Steal(); ok {
					if _, dup := got.LoadOrStore(*v, true); dup {
						t.Errorf("duplicate stolen element %d", *v)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Drain the rest.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		if _, dup := got.LoadOrStore(*v, true); dup {
			t.Errorf("duplicate drained element %d", *v)
		}
	}
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if count != n {
		t.Fatalf("conserved %d of %d elements", count, n)
	}
}

func TestDequeStats(t *testing.T) {
	d := NewDeque[int](2)
	d.PushBottom(ptr(1))
	d.PushBottom(ptr(2))
	d.PopBottom()
	d.Steal()
	d.Steal() // fails
	d.PopBottom()
	s := d.Stats()
	if s.Pushes != 2 || s.Pops != 1 || s.Steals != 1 || s.FailedSteal != 1 || s.FailedPops != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// ---- StealInto (steal-half batch transfer) ----

// StealInto with a nil destination degrades to a single steal.
func TestStealIntoNilDestIsSteal(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 5; i++ {
		d.PushBottom(ptr(i))
	}
	v, ok := d.StealInto(nil)
	if !ok || *v != 0 {
		t.Fatalf("StealInto(nil) = %v,%v want 0", v, ok)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d after single steal, want 4", d.Len())
	}
	if s := d.Stats(); s.BatchSteals != 0 || s.BatchMoved != 0 {
		t.Fatalf("nil-dest steal counted as a batch: %+v", s)
	}
}

// A batch round takes the first element plus at most half the remainder
// (capped), all in FIFO order, into the thief's own deque.
func TestStealIntoTakesHalfInOrder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 40, 100} {
		victim := NewDeque[int](4)
		dst := NewDeque[int](4)
		for i := 0; i < n; i++ {
			victim.PushBottom(ptr(i))
		}
		first, ok := victim.StealInto(dst)
		if !ok || *first != 0 {
			t.Fatalf("n=%d: first = %v,%v want 0", n, first, ok)
		}
		wantMoved := (n - 1 + 1) / 2 // half of what remained after the first
		if wantMoved > stealHalfCap {
			wantMoved = stealHalfCap
		}
		if dst.Len() != wantMoved {
			t.Fatalf("n=%d: dst.Len = %d want %d", n, dst.Len(), wantMoved)
		}
		// Transferred elements keep FIFO order in the thief's deque.
		for i := 1; i <= wantMoved; i++ {
			v, ok := dst.Steal()
			if !ok || *v != i {
				t.Fatalf("n=%d: dst order broken: got %v,%v want %d", n, v, ok, i)
			}
		}
		if victim.Len() != n-1-wantMoved {
			t.Fatalf("n=%d: victim.Len = %d want %d", n, victim.Len(), n-1-wantMoved)
		}
		s := victim.Stats()
		if wantMoved > 0 && (s.BatchSteals != 1 || s.BatchMoved != int64(wantMoved)) {
			t.Fatalf("n=%d: batch stats = %+v want 1 round, %d moved", n, s, wantMoved)
		}
	}
}

func TestStealIntoEmptyVictim(t *testing.T) {
	victim := NewDeque[int](4)
	dst := NewDeque[int](4)
	if v, ok := victim.StealInto(dst); ok {
		t.Fatalf("StealInto on empty deque returned %v", v)
	}
	if dst.Len() != 0 {
		t.Fatalf("dst gained %d elements from an empty victim", dst.Len())
	}
}

// Property: batch stealing conserves elements under a concurrent owner
// and multiple batch thieves — every push extracted exactly once across
// the owner's pops, the thieves' firsts, and the thieves' dst deques.
func TestStealIntoConcurrentConservation(t *testing.T) {
	f := func(script []uint8, nthieves uint8) bool {
		victim := NewDeque[int](2)
		thieves := int(nthieves%3) + 1
		if len(script) < 16 {
			script = append(script, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0)
		}
		var mu sync.Mutex
		got := map[int]int{}
		take := func(v int) {
			mu.Lock()
			got[v]++
			mu.Unlock()
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for th := 0; th < thieves; th++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := NewDeque[int](8) // this thief's own deque
				drain := func() {
					for {
						v, ok := dst.PopBottom()
						if !ok {
							return
						}
						take(*v)
					}
				}
				for {
					if v, ok := victim.StealInto(dst); ok {
						take(*v)
						drain()
						continue
					}
					select {
					case <-stop:
						drain()
						return
					default:
					}
				}
			}()
		}
		pushed := 0
		for _, op := range script {
			if op%3 != 2 {
				victim.PushBottom(ptr(pushed))
				pushed++
			} else if v, ok := victim.PopBottom(); ok {
				take(*v)
			}
		}
		for {
			v, ok := victim.PopBottom()
			if !ok {
				break
			}
			take(*v)
		}
		close(stop)
		wg.Wait()
		for {
			v, ok := victim.Steal()
			if !ok {
				break
			}
			take(*v)
		}
		mu.Lock()
		defer mu.Unlock()
		for v := 0; v < pushed; v++ {
			if got[v] != 1 {
				return false
			}
		}
		return len(got) == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO[string]
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %q,%v want %q", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestFIFOCompaction(t *testing.T) {
	var q FIFO[int]
	// Push and pop enough to exercise growth and wrap-around.
	for i := 0; i < 1000; i++ {
		q.Push(i)
	}
	for i := 0; i < 900; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
	for i := 1000; i < 1100; i++ {
		q.Push(i)
	}
	for i := 900; i < 1100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
}

// A steady-state producer/consumer pair must not allocate once the ring
// has warmed up (the ring only grows when live count exceeds capacity).
func TestFIFOSteadyStateNoGrowth(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	capBefore := len(q.buf)
	for i := 0; i < 10000; i++ {
		q.Push(i)
		q.Pop()
	}
	if len(q.buf) != capBefore {
		t.Fatalf("ring grew from %d to %d under steady state", capBefore, len(q.buf))
	}
}

func TestFIFOConcurrent(t *testing.T) {
	var q FIFO[int]
	const producers, perProducer = 4, 2500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("got %d elements", len(seen))
	}
}

func TestRoundRobinVictimsNeverSelf(t *testing.T) {
	rr := NewRoundRobinVictims(5)
	for thief := 0; thief < 5; thief++ {
		seen := map[int]bool{}
		for i := 0; i < 20; i++ {
			v := rr.Next(thief)
			if v == thief {
				t.Fatalf("thief %d picked itself", thief)
			}
			if v < 0 || v >= 5 {
				t.Fatalf("victim %d out of range", v)
			}
			seen[v] = true
		}
		if len(seen) != 4 {
			t.Errorf("thief %d did not cycle all victims: %v", thief, seen)
		}
	}
}

func TestRoundRobinSingleWorker(t *testing.T) {
	rr := NewRoundRobinVictims(1)
	if v := rr.Next(0); v != 0 {
		t.Fatalf("single-worker Next = %d", v)
	}
}

func TestRandomVictimsNeverSelfAndCovers(t *testing.T) {
	rv := NewRandomVictims(8, 42)
	for thief := 0; thief < 8; thief++ {
		seen := map[int]bool{}
		for i := 0; i < 400; i++ {
			v := rv.Next(thief)
			if v == thief {
				t.Fatalf("thief %d picked itself", thief)
			}
			seen[v] = true
		}
		if len(seen) < 6 {
			t.Errorf("thief %d only saw victims %v", thief, seen)
		}
	}
}

func TestRandomVictimsDeterministic(t *testing.T) {
	a := NewRandomVictims(4, 7)
	b := NewRandomVictims(4, 7)
	for i := 0; i < 100; i++ {
		if a.Next(i%4) != b.Next(i%4) {
			t.Fatal("same-seed pickers diverged")
		}
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	d := NewDeque[int](1024)
	v := new(int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(v)
		d.PopBottom()
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	d := NewDeque[int](1024)
	v := new(int)
	for i := 0; i < b.N; i++ {
		d.PushBottom(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

func BenchmarkFIFO(b *testing.B) {
	var q FIFO[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

// ---- Chase–Lev property tests (DESIGN.md §6 invariants) ----

// Property: against a reference slice model, any single-threaded
// interleaving of PushBottom/PopBottom/Steal behaves exactly like a
// deque — owner LIFO, thief FIFO, element-for-element.
func TestDequeMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDeque[int](2)
		var model []int // model[0] is the steal end
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				d.PushBottom(ptr(next))
				model = append(model, next)
				next++
			case 2:
				v, ok := d.PopBottom()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if *v != want {
						return false
					}
				}
			case 3:
				v, ok := d.Steal()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if *v != want {
						return false
					}
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under a concurrent owner (pushes and pops driven by a random
// script) and multiple thieves, no element is lost or duplicated, and
// each thief's stolen values arrive in strictly increasing push order
// (the FIFO steal end only moves forward).
func TestDequeConcurrentConservationQuick(t *testing.T) {
	f := func(script []uint8, nthieves uint8) bool {
		d := NewDeque[int](2)
		thieves := int(nthieves%3) + 1
		if len(script) < 8 {
			script = append(script, 1, 1, 2, 1, 1, 1, 2, 1)
		}
		taken := make([][]int, thieves+1) // [0] = owner, rest = thieves
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for th := 1; th <= thieves; th++ {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				prev := -1
				for {
					if v, ok := d.Steal(); ok {
						if *v <= prev {
							t.Errorf("thief %d stole %d after %d", th, *v, prev)
						}
						prev = *v
						taken[th] = append(taken[th], *v)
						continue
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
		}
		pushed := 0
		for _, op := range script {
			if op%3 != 2 {
				d.PushBottom(ptr(pushed))
				pushed++
			} else if v, ok := d.PopBottom(); ok {
				taken[0] = append(taken[0], *v)
			}
		}
		// Drain remaining as the owner, then stop the thieves.
		for {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			taken[0] = append(taken[0], *v)
		}
		close(stop)
		wg.Wait()
		// Thieves may have raced the final drain; collect their tail too.
		for {
			v, ok := d.Steal()
			if !ok {
				break
			}
			taken[0] = append(taken[0], *v)
		}
		seen := make(map[int]bool, pushed)
		for _, tk := range taken {
			for _, v := range tk {
				if seen[v] || v < 0 || v >= pushed {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The deque must keep working across many growth generations while
// thieves hold older ring references.
func TestDequeGrowthUnderConcurrentSteals(t *testing.T) {
	d := NewDeque[int](2)
	const n = 50000
	var stolen sync.Map
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					if _, dup := stolen.LoadOrStore(*v, true); dup {
						t.Errorf("duplicate %d", *v)
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		d.PushBottom(ptr(i))
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				if _, dup := stolen.LoadOrStore(*v, true); dup {
					t.Errorf("duplicate popped %d", *v)
				}
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		if _, dup := stolen.LoadOrStore(*v, true); dup {
			t.Errorf("duplicate drained %d", *v)
		}
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		if _, dup := stolen.LoadOrStore(*v, true); dup {
			t.Errorf("duplicate late-stolen %d", *v)
		}
	}
	count := 0
	stolen.Range(func(_, _ any) bool { count++; return true })
	if count != n {
		t.Fatalf("conserved %d of %d", count, n)
	}
}
