// Package sched provides the scheduling substrate shared by the Parallel
// Task runtime (internal/ptask) and the simulated multicore machine
// (internal/machine): per-worker work-stealing deques, a global FIFO
// queue, victim selection, and scheduler statistics.
//
// The Parallel Task paper [Giacaman & Sinnen, IJPP 2013] describes a
// work-stealing runtime: each worker pushes and pops its own tasks LIFO
// (good locality, depth-first on recursive decompositions) while idle
// workers steal FIFO from the opposite end (breadth-first, stealing the
// largest remaining subtrees). Both disciplines are implemented here.
package sched

import "sync"

// Deque is a double-ended work queue. The owner worker uses PushBottom and
// PopBottom (LIFO); thieves use Steal, which removes from the top (FIFO
// relative to the owner's pushes).
//
// The implementation is a mutex-protected ring buffer rather than the
// lock-free Chase-Lev algorithm. The mutex version is correct under the Go
// memory model without unsafe code, is plenty fast for the granularities
// in this reproduction, and keeps the invariants testable; the scheduling
// *policy* (LIFO owner / FIFO thief) — which is what the experiments
// measure — is identical.
type Deque[T any] struct {
	mu    sync.Mutex
	buf   []T
	head  int // index of the oldest element (steal end)
	size  int
	stats DequeStats
}

// DequeStats counts deque traffic; read via Stats after a run.
type DequeStats struct {
	Pushes      int64
	Pops        int64
	Steals      int64
	FailedPops  int64
	FailedSteal int64
}

// NewDeque returns an empty deque with the given initial capacity
// (minimum 2).
func NewDeque[T any](capacity int) *Deque[T] {
	if capacity < 2 {
		capacity = 2
	}
	return &Deque[T]{buf: make([]T, capacity)}
}

// Len reports the current number of queued items.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// PushBottom adds an item at the owner's end.
func (d *Deque[T]) PushBottom(v T) {
	d.mu.Lock()
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)%len(d.buf)] = v
	d.size++
	d.stats.Pushes++
	d.mu.Unlock()
}

// PopBottom removes and returns the most recently pushed item (LIFO).
// The second result is false if the deque was empty.
func (d *Deque[T]) PopBottom() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero T
	if d.size == 0 {
		d.stats.FailedPops++
		return zero, false
	}
	d.size--
	idx := (d.head + d.size) % len(d.buf)
	v := d.buf[idx]
	d.buf[idx] = zero
	d.stats.Pops++
	return v, true
}

// Steal removes and returns the oldest item (FIFO end), as a thief would.
// The second result is false if the deque was empty.
func (d *Deque[T]) Steal() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero T
	if d.size == 0 {
		d.stats.FailedSteal++
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	d.stats.Steals++
	return v, true
}

// Stats returns a snapshot of the deque's traffic counters.
func (d *Deque[T]) Stats() DequeStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Deque[T]) grow() {
	nb := make([]T, 2*len(d.buf))
	for i := 0; i < d.size; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}
