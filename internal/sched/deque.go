// Package sched provides the scheduling substrate shared by the Parallel
// Task runtime (internal/ptask) and the simulated multicore machine
// (internal/machine): per-worker work-stealing deques, a global FIFO
// queue, victim selection, and scheduler statistics.
//
// The Parallel Task paper [Giacaman & Sinnen, IJPP 2013] describes a
// work-stealing runtime: each worker pushes and pops its own tasks LIFO
// (good locality, depth-first on recursive decompositions) while idle
// workers steal FIFO from the opposite end (breadth-first, stealing the
// largest remaining subtrees). Both disciplines are implemented here.
package sched

import "sync/atomic"

// Deque is a double-ended work queue over *T elements. The owner worker
// uses PushBottom and PopBottom (LIFO); thieves use Steal or StealInto,
// which remove from the top (FIFO relative to the owner's pushes).
//
// The implementation is the lock-free Chase–Lev deque [Chase & Lev, SPAA
// 2005]: top and bottom are atomic indices into a circular array, thieves
// CAS top to claim an element, and the owner only takes a CAS (on the same
// top) when popping the last remaining element. PushBottom/PopBottom are
// single-owner operations: exactly one goroutine at a time may act as the
// owner (a later goroutine may take over once it observes a
// happens-before edge to the previous owner, e.g. via WaitGroup.Wait).
// Steal is safe from any number of concurrent thieves. Element slots are
// atomic pointers, so the implementation is safe under the Go memory
// model and clean under the race detector without unsafe code.
//
// Elements are passed and stored as *T pointers: pushing does not box the
// value, so a caller that recycles its element objects (the pool's task
// envelopes) keeps the push/pop/steal cycle allocation-free. This is what
// makes the scheduler's zero-allocation steady state possible — the old
// by-value API heap-boxed every pushed element.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[ring[T]]

	pushes      atomic.Int64
	pops        atomic.Int64
	steals      atomic.Int64
	batches     atomic.Int64 // StealInto calls that moved at least one extra
	batchMoved  atomic.Int64 // elements transferred into thief deques
	failedPops  atomic.Int64
	failedSteal atomic.Int64
}

// ring is one immutable-size circular array generation. The owner replaces
// it with a doubled copy when full; thieves holding the old generation can
// still safely read slots in [top, bottom) because growth never mutates
// the old array.
type ring[T any] struct {
	mask int64
	slot []atomic.Pointer[T]
}

func newRing[T any](n int64) *ring[T] {
	return &ring[T]{mask: n - 1, slot: make([]atomic.Pointer[T], n)}
}

func (r *ring[T]) load(i int64) *T     { return r.slot[i&r.mask].Load() }
func (r *ring[T]) store(i int64, v *T) { r.slot[i&r.mask].Store(v) }

// DequeStats counts deque traffic; read via Stats after a run.
type DequeStats struct {
	Pushes      int64
	Pops        int64
	Steals      int64
	BatchSteals int64 // steal-half rounds that transferred extra elements
	BatchMoved  int64 // elements moved into thief deques by those rounds
	FailedPops  int64
	FailedSteal int64
}

// NewDeque returns an empty deque with the given initial capacity
// (rounded up to a power of two, minimum 8).
func NewDeque[T any](capacity int) *Deque[T] {
	n := int64(8)
	for n < int64(capacity) {
		n <<= 1
	}
	d := &Deque[T]{}
	d.ring.Store(newRing[T](n))
	return d
}

// Len reports the current number of queued items (a moment-in-time
// estimate under concurrent access).
func (d *Deque[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// PushBottom adds an item at the owner's end. Owner-only.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= int64(len(r.slot)) {
		r = d.grow(r, t, b)
	}
	r.store(b, v)
	d.bottom.Store(b + 1)
	d.pushes.Add(1)
}

// grow publishes a doubled ring holding the live elements [t, b). The old
// ring is left untouched so in-flight thieves can still read from it.
func (d *Deque[T]) grow(old *ring[T], t, b int64) *ring[T] {
	nr := newRing[T](2 * int64(len(old.slot)))
	for i := t; i < b; i++ {
		nr.store(i, old.load(i))
	}
	d.ring.Store(nr)
	return nr
}

// PopBottom removes and returns the most recently pushed item (LIFO).
// The second result is nil, false if the deque was empty. Owner-only.
func (d *Deque[T]) PopBottom() (*T, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the canonical empty state.
		d.bottom.Store(t)
		d.failedPops.Add(1)
		return nil, false
	}
	vp := r.load(b)
	if t == b {
		// Last element: race thieves for it via the top index.
		if !d.top.CompareAndSwap(t, t+1) {
			d.bottom.Store(t + 1)
			d.failedPops.Add(1)
			return nil, false
		}
		d.bottom.Store(t + 1)
		d.pops.Add(1)
		return vp, true
	}
	// More than one element left: the bottom end is owner-exclusive.
	r.store(b, nil)
	d.pops.Add(1)
	return vp, true
}

// Steal removes and returns the oldest item (FIFO end), as a thief would.
// The second result is false if the deque was empty or the thief lost a
// race for the element. Safe from any goroutine.
func (d *Deque[T]) Steal() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		d.failedSteal.Add(1)
		return nil, false
	}
	r := d.ring.Load()
	vp := r.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		d.failedSteal.Add(1)
		return nil, false
	}
	d.steals.Add(1)
	return vp, true
}

// stealHalfCap bounds how many elements one StealInto round may move. A
// small cap keeps a thief from draining a victim that is about to need
// its own work back, while still amortising the steal round-trip.
const stealHalfCap = 16

// StealInto is steal-half batch stealing: it transfers up to half of the
// victim's visible load (capped at stealHalfCap) in one round, returning
// the first stolen element for immediate execution and pushing the rest
// onto dst — the thief's own deque, where siblings can re-steal them.
// dst must be owned by the calling goroutine (thief-side owner ops); pass
// nil to steal a single element.
//
// Each element is still claimed with its own CAS on top. A single-CAS
// range claim (top += k) looks tempting but is unsound against this
// owner protocol: the owner pops interior elements without touching top
// and recycles their slots on subsequent pushes, so a range claim can
// take an element the owner already executed or strand a freshly pushed
// one below top. Hendler & Shavit's steal-half algorithm exists to close
// exactly that hole, at the cost of a far heavier owner path; since the
// per-element CASes after the first land on an exclusively held cache
// line, the batch win lives in saved scheduler round trips and wakeups,
// not in CAS count — so the simple, provably conservative claim loop is
// the better trade.
func (d *Deque[T]) StealInto(dst *Deque[T]) (*T, bool) {
	first, ok := d.Steal()
	if !ok || dst == nil {
		return first, ok
	}
	// Claim up to half of what remains visible after the first steal.
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return first, true
	}
	k := (n + 1) / 2
	if k > stealHalfCap {
		k = stealHalfCap
	}
	moved := int64(0)
	for i := int64(0); i < k; i++ {
		v, ok := d.Steal()
		if !ok {
			break // victim drained or a sibling thief won the race
		}
		dst.PushBottom(v)
		moved++
	}
	if moved > 0 {
		d.batches.Add(1)
		d.batchMoved.Add(moved)
	}
	return first, true
}

// Stats returns a snapshot of the deque's traffic counters.
func (d *Deque[T]) Stats() DequeStats {
	return DequeStats{
		Pushes:      d.pushes.Load(),
		Pops:        d.pops.Load(),
		Steals:      d.steals.Load(),
		BatchSteals: d.batches.Load(),
		BatchMoved:  d.batchMoved.Load(),
		FailedPops:  d.failedPops.Load(),
		FailedSteal: d.failedSteal.Load(),
	}
}
