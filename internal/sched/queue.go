package sched

import "sync"

// FIFO is a mutex-protected unbounded FIFO queue: the "global queue"
// baseline that the work-stealing ablation (A1 in DESIGN.md) compares
// against. Every worker contends on one lock, which is exactly the
// bottleneck the ablation demonstrates.
type FIFO[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
}

// Push appends v to the tail of the queue.
func (q *FIFO[T]) Push(v T) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.mu.Unlock()
}

// Pop removes the oldest element; ok is false when the queue is empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.buf) {
		var zero T
		return zero, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	// Reclaim space once the consumed prefix dominates.
	if q.head > 64 && q.head*2 > len(q.buf) {
		q.buf = append([]T(nil), q.buf[q.head:]...)
		q.head = 0
	}
	return v, true
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// Victim selection: when a worker's own deque is empty it picks other
// workers to steal from. The PARC runtime uses randomized victim selection;
// RoundRobinVictims is the deterministic variant used by the simulator so
// simulated schedules are reproducible.

// VictimPicker yields a sequence of victim worker indices, excluding self.
type VictimPicker interface {
	// Next returns the next victim to try for the given thief.
	Next(thief int) int
}

// RoundRobinVictims cycles deterministically through workers, skipping the
// thief itself.
type RoundRobinVictims struct {
	n    int
	mu   sync.Mutex
	next []int
}

// NewRoundRobinVictims creates a picker for n workers. n must be >= 2 for
// Next to make sense; with n == 1 Next returns 0.
func NewRoundRobinVictims(n int) *RoundRobinVictims {
	return &RoundRobinVictims{n: n, next: make([]int, n)}
}

// Next returns the next victim index for thief, never equal to thief when
// more than one worker exists.
func (rr *RoundRobinVictims) Next(thief int) int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.n <= 1 {
		return 0
	}
	v := rr.next[thief] % rr.n
	if v == thief {
		v = (v + 1) % rr.n
	}
	rr.next[thief] = v + 1
	return v
}

// RandomVictims picks victims pseudo-randomly from a per-thief stream; the
// streams are seeded deterministically so tests remain reproducible, but
// the order is uncorrelated between thieves like the PARC runtime's.
type RandomVictims struct {
	n      int
	mu     sync.Mutex
	states []uint64
}

// NewRandomVictims creates a random picker for n workers seeded from seed.
func NewRandomVictims(n int, seed uint64) *RandomVictims {
	rv := &RandomVictims{n: n, states: make([]uint64, n)}
	for i := range rv.states {
		rv.states[i] = seed + uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	return rv
}

// Next returns a pseudo-random victim for thief, never the thief itself
// when more than one worker exists.
func (rv *RandomVictims) Next(thief int) int {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.n <= 1 {
		return 0
	}
	// xorshift64* step
	x := rv.states[thief]
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	rv.states[thief] = x
	v := int((x * 0x2545F4914F6CDD1D) >> 33 % uint64(rv.n))
	if v == thief {
		v = (v + 1) % rv.n
	}
	return v
}
