package sched

import "sync"

// FIFO is a mutex-protected unbounded FIFO queue: the "global queue"
// baseline that the work-stealing ablation (A1 in DESIGN.md) compares
// against, and the pool's landing spot for external submissions. Every
// worker contends on one lock, which is exactly the bottleneck the
// ablation demonstrates.
//
// Storage is a power-of-two circular buffer: head and tail chase each
// other around a ring that only grows when the live count exceeds the
// capacity, so a steady-state producer/consumer pair allocates nothing
// (the old slice-append form leaked an amortised allocation per
// compaction).
type FIFO[T any] struct {
	mu   sync.Mutex
	buf  []T // len(buf) is a power of two (or 0 before first Push)
	head int // index of the oldest element
	n    int // live element count
}

// Push appends v to the tail of the queue.
func (q *FIFO[T]) Push(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.growLocked()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	q.mu.Unlock()
}

// growLocked doubles the ring (minimum 8), unwrapping the live elements
// to the front of the new buffer.
func (q *FIFO[T]) growLocked() {
	ncap := 2 * len(q.buf)
	if ncap < 8 {
		ncap = 8
	}
	nb := make([]T, ncap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes the oldest element; ok is false when the queue is empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		var zero T
		return zero, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release the element to the GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v, true
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Victim selection: when a worker's own deque is empty it picks other
// workers to steal from. The PARC runtime uses randomized victim selection;
// RoundRobinVictims is the deterministic variant used by the simulator so
// simulated schedules are reproducible.

// VictimPicker yields a sequence of victim worker indices, excluding self.
type VictimPicker interface {
	// Next returns the next victim to try for the given thief.
	Next(thief int) int
}

// RoundRobinVictims cycles deterministically through workers, skipping the
// thief itself.
type RoundRobinVictims struct {
	n    int
	mu   sync.Mutex
	next []int
}

// NewRoundRobinVictims creates a picker for n workers. n must be >= 2 for
// Next to make sense; with n == 1 Next returns 0.
func NewRoundRobinVictims(n int) *RoundRobinVictims {
	return &RoundRobinVictims{n: n, next: make([]int, n)}
}

// Next returns the next victim index for thief, never equal to thief when
// more than one worker exists.
func (rr *RoundRobinVictims) Next(thief int) int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.n <= 1 {
		return 0
	}
	v := rr.next[thief] % rr.n
	if v == thief {
		v = (v + 1) % rr.n
	}
	rr.next[thief] = v + 1
	return v
}

// RandomVictims picks victims pseudo-randomly from a per-thief stream; the
// streams are seeded deterministically so tests remain reproducible, but
// the order is uncorrelated between thieves like the PARC runtime's.
type RandomVictims struct {
	n      int
	mu     sync.Mutex
	states []uint64
}

// NewRandomVictims creates a random picker for n workers seeded from seed.
func NewRandomVictims(n int, seed uint64) *RandomVictims {
	rv := &RandomVictims{n: n, states: make([]uint64, n)}
	for i := range rv.states {
		rv.states[i] = seed + uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	return rv
}

// Next returns a pseudo-random victim for thief, never the thief itself
// when more than one worker exists.
func (rv *RandomVictims) Next(thief int) int {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.n <= 1 {
		return 0
	}
	// xorshift64* step
	x := rv.states[thief]
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	rv.states[thief] = x
	v := int((x * 0x2545F4914F6CDD1D) >> 33 % uint64(rv.n))
	if v == thief {
		v = (v + 1) % rv.n
	}
	return v
}
