package workload

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenFolderDeterministic(t *testing.T) {
	spec := DefaultFolderSpec(7)
	a, na := GenFolder(spec)
	b, nb := GenFolder(spec)
	if na != nb {
		t.Fatalf("needle counts differ: %d vs %d", na, nb)
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("path %d differs", i)
		}
		if len(a.Files[i].Lines) != len(b.Files[i].Lines) {
			t.Fatalf("file %d line counts differ", i)
		}
	}
}

func TestGenFolderNeedleCount(t *testing.T) {
	spec := DefaultFolderSpec(3)
	f, needles := GenFolder(spec)
	count := 0
	for _, file := range f.Files {
		for _, line := range file.Lines {
			count += strings.Count(line, spec.NeedleWord)
		}
	}
	if count != needles {
		t.Fatalf("reported %d needles, found %d", needles, count)
	}
	if needles == 0 {
		t.Fatal("expected some needles in a 200-file folder")
	}
}

func TestGenFolderSpecRespected(t *testing.T) {
	spec := FolderSpec{Seed: 1, NumFiles: 17, MinLines: 5, MaxLines: 5, WordsPerLn: 3, Depth: 2}
	f, _ := GenFolder(spec)
	if len(f.Files) != 17 {
		t.Fatalf("NumFiles = %d", len(f.Files))
	}
	for _, file := range f.Files {
		if len(file.Lines) != 5 {
			t.Fatalf("file %s has %d lines, want 5", file.Path, len(file.Lines))
		}
		for _, line := range file.Lines {
			if got := len(strings.Fields(line)); got != 3 {
				t.Fatalf("line has %d words, want 3", got)
			}
		}
	}
	if f.TotalLines() != 17*5 {
		t.Fatalf("TotalLines = %d", f.TotalLines())
	}
}

func TestIntArray(t *testing.T) {
	xs := IntArray(5, 1000, 50)
	if len(xs) != 1000 {
		t.Fatalf("len = %d", len(xs))
	}
	for _, v := range xs {
		if v < 0 || v >= 50 {
			t.Fatalf("value %d out of bound", v)
		}
	}
	ys := IntArray(5, 1000, 50)
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatal("IntArray not deterministic")
		}
	}
}

func TestNearlySorted(t *testing.T) {
	xs := NearlySorted(2, 1000, 0.01)
	if sort.IntsAreSorted(xs) {
		t.Error("expected some disorder with swapFrac > 0")
	}
	inversions := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			inversions++
		}
	}
	if inversions > 100 {
		t.Errorf("too many inversions (%d) for a nearly-sorted array", inversions)
	}
	zs := NearlySorted(2, 100, 0)
	if !sort.IntsAreSorted(zs) {
		t.Error("swapFrac=0 must yield sorted output")
	}
}

func TestGenGraphStructure(t *testing.T) {
	g := GenGraph(9, 500, 4)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Offs[0] != 0 || g.Offs[g.N] != len(g.Adj) {
		t.Fatal("offset array malformed")
	}
	for v := 0; v < g.N; v++ {
		if g.OutDegree(v) < 1 {
			t.Fatalf("vertex %d has no out-edges", v)
		}
		ring := false
		for _, w := range g.Neighbors(v) {
			if w < 0 || w >= g.N {
				t.Fatalf("edge target %d out of range", w)
			}
			if w == (v+1)%g.N {
				ring = true
			}
		}
		if !ring {
			t.Fatalf("vertex %d missing ring edge", v)
		}
	}
}

func TestGenGraphOffsetsMonotone(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw uint8) bool {
		n := int(nRaw%100) + 2
		deg := int(degRaw%8) + 1
		g := GenGraph(seed, n, deg)
		for v := 0; v < n; v++ {
			if g.Offs[v+1] < g.Offs[v] {
				return false
			}
		}
		return g.Offs[n] == len(g.Adj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenImage(t *testing.T) {
	im := GenImage(4, 64, 32)
	if im.W != 64 || im.H != 32 || len(im.Pix) != 64*32 {
		t.Fatal("image dimensions wrong")
	}
	// Content should not be constant.
	first := im.At(0, 0)
	varies := false
	for y := 0; y < im.H && !varies; y++ {
		for x := 0; x < im.W; x++ {
			if im.At(x, y) != first {
				varies = true
				break
			}
		}
	}
	if !varies {
		t.Error("generated image is constant")
	}
}

func TestGenImageSet(t *testing.T) {
	set := GenImageSet(11, 10, 16, 64)
	if len(set) != 10 {
		t.Fatalf("len = %d", len(set))
	}
	for _, im := range set {
		if im.W < 16 || im.W > 64 || im.H < 16 || im.H > 64 {
			t.Fatalf("dims %dx%d out of range", im.W, im.H)
		}
	}
}

func TestGenDocs(t *testing.T) {
	spec := DefaultDocSpec(8)
	docs, hits := GenDocs(spec)
	if len(docs) != spec.NumDocs {
		t.Fatalf("doc count = %d", len(docs))
	}
	count := 0
	for _, d := range docs {
		if len(d.Pages) < spec.MinPages || len(d.Pages) > spec.MaxPages {
			t.Fatalf("doc %s has %d pages", d.Name, len(d.Pages))
		}
		for _, p := range d.Pages {
			if strings.Contains(p, spec.Needle) {
				count++
			}
		}
	}
	if count != hits {
		t.Fatalf("reported %d hits, found %d", hits, count)
	}
}

func TestGenPages(t *testing.T) {
	pages := GenPages(13, 100, 1000, 100000)
	if len(pages) != 100 {
		t.Fatalf("len = %d", len(pages))
	}
	seen := map[string]bool{}
	for _, p := range pages {
		if p.Bytes < 1000 || p.Bytes > 100000 {
			t.Fatalf("page size %d out of range", p.Bytes)
		}
		if seen[p.URL] {
			t.Fatalf("duplicate URL %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func BenchmarkGenFolder(b *testing.B) {
	spec := DefaultFolderSpec(1)
	for i := 0; i < b.N; i++ {
		GenFolder(spec)
	}
}

func BenchmarkGenGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenGraph(1, 1000, 8)
	}
}
