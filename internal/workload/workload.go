// Package workload generates the synthetic inputs for every reproduced
// experiment: text-file folder trees (project 4), image sets (project 1),
// numeric arrays (project 2), graphs (project 3), paged documents standing
// in for PDFs (project 7), and web-page sets (project 10).
//
// The paper's students measured their projects on ad-hoc local data (their
// own photo folders, PDF collections, web pages). None of that data is
// available, so every generator here is deterministic from a seed: two
// runs of any experiment produce byte-identical inputs, which is what lets
// EXPERIMENTS.md record stable numbers.
package workload

import (
	"fmt"
	"math"
	"strings"

	"parc751/internal/xrand"
)

// Dictionary is the word pool used when synthesising prose. It is small on
// purpose: repeated words give the text-search experiments realistic hit
// densities.
var Dictionary = []string{
	"parallel", "task", "thread", "core", "memory", "cache", "lock",
	"barrier", "speedup", "granularity", "schedule", "queue", "stack",
	"reduce", "map", "graph", "matrix", "vector", "sort", "search",
	"student", "research", "project", "group", "lecture", "seminar",
	"auckland", "engineering", "software", "java", "pyjama", "parc",
}

// TextFile is one synthetic file in a folder tree.
type TextFile struct {
	Path  string
	Lines []string
}

// Folder is a synthetic directory tree of text files, the input to the
// text-search project. Files are stored flat with slash-separated paths;
// nothing in the experiments needs a real filesystem, and keeping the tree
// in memory makes runs hermetic and fast.
type Folder struct {
	Files []TextFile
}

// FolderSpec configures GenFolder.
type FolderSpec struct {
	Seed        uint64
	NumFiles    int
	MinLines    int
	MaxLines    int
	WordsPerLn  int
	Depth       int     // directory nesting depth
	NeedleRate  float64 // probability a line carries the needle word
	NeedleWord  string  // the planted search target
	SkewedSizes bool    // if true, file lengths follow a Zipf-like skew
}

// DefaultFolderSpec returns a medium folder: 200 files, prose lines, and a
// planted needle on about 0.5% of lines.
func DefaultFolderSpec(seed uint64) FolderSpec {
	return FolderSpec{
		Seed: seed, NumFiles: 200, MinLines: 20, MaxLines: 200,
		WordsPerLn: 8, Depth: 3, NeedleRate: 0.005, NeedleWord: "concurrencyNEEDLE",
	}
}

// GenFolder synthesises a folder tree per spec. The planted needle count is
// returned so tests can assert the searcher finds every occurrence.
func GenFolder(spec FolderSpec) (*Folder, int) {
	r := xrand.New(spec.Seed)
	f := &Folder{Files: make([]TextFile, 0, spec.NumFiles)}
	needles := 0
	for i := 0; i < spec.NumFiles; i++ {
		var sb strings.Builder
		depth := 1 + r.Intn(maxInt(spec.Depth, 1))
		for d := 0; d < depth; d++ {
			fmt.Fprintf(&sb, "dir%d/", r.Intn(4))
		}
		fmt.Fprintf(&sb, "file%04d.txt", i)

		span := spec.MaxLines - spec.MinLines + 1
		n := spec.MinLines
		if span > 1 {
			if spec.SkewedSizes {
				// Square the uniform draw: most files small, a few large.
				u := r.Float64()
				n += int(u * u * float64(span-1))
			} else {
				n += r.Intn(span)
			}
		}
		lines := make([]string, n)
		for l := range lines {
			words := make([]string, spec.WordsPerLn)
			for w := range words {
				words[w] = Dictionary[r.Intn(len(Dictionary))]
			}
			if spec.NeedleWord != "" && r.Float64() < spec.NeedleRate {
				words[r.Intn(len(words))] = spec.NeedleWord
				needles++
			}
			lines[l] = strings.Join(words, " ")
		}
		f.Files = append(f.Files, TextFile{Path: sb.String(), Lines: lines})
	}
	return f, needles
}

// TotalLines reports the number of lines across all files.
func (f *Folder) TotalLines() int {
	n := 0
	for _, file := range f.Files {
		n += len(file.Lines)
	}
	return n
}

// IntArray returns n pseudo-random ints in [0, bound), the quicksort input.
func IntArray(seed uint64, n, bound int) []int {
	r := xrand.New(seed)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Intn(bound)
	}
	return xs
}

// NearlySorted returns an ascending array with swapFrac·n random swaps
// applied — the quicksort adversarial case students compared against.
func NearlySorted(seed uint64, n int, swapFrac float64) []int {
	r := xrand.New(seed)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	swaps := int(swapFrac * float64(n))
	for s := 0; s < swaps; s++ {
		i, j := r.Intn(n), r.Intn(n)
		xs[i], xs[j] = xs[j], xs[i]
	}
	return xs
}

// Graph is a directed graph in compact adjacency form (CSR-like), the
// input for the graph-processing kernels.
type Graph struct {
	N    int
	Offs []int // len N+1
	Adj  []int
}

// OutDegree returns the out-degree of vertex v.
func (g *Graph) OutDegree(v int) int { return g.Offs[v+1] - g.Offs[v] }

// Neighbors returns the adjacency slice of vertex v (not a copy).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Offs[v]:g.Offs[v+1]] }

// GenGraph builds a random directed graph with n vertices and average
// out-degree deg. Edge endpoints follow a mild power-law preference so
// PageRank has non-trivial structure. Vertex i always has an edge to
// (i+1) mod n, keeping the graph connected for BFS.
func GenGraph(seed uint64, n, deg int) *Graph {
	r := xrand.New(seed)
	adjs := make([][]int, n)
	zipf := xrand.NewZipfGen(r, n, 1.05)
	for v := 0; v < n; v++ {
		d := 1 + r.Intn(maxInt(2*deg-1, 1))
		lst := make([]int, 0, d+1)
		lst = append(lst, (v+1)%n)
		for e := 0; e < d; e++ {
			lst = append(lst, zipf.Next())
		}
		adjs[v] = lst
	}
	g := &Graph{N: n, Offs: make([]int, n+1)}
	total := 0
	for v, lst := range adjs {
		g.Offs[v] = total
		total += len(lst)
	}
	g.Offs[n] = total
	g.Adj = make([]int, 0, total)
	for _, lst := range adjs {
		g.Adj = append(g.Adj, lst...)
	}
	return g
}

// Image is a synthetic grayscale image (the thumbnail project input).
// A full RGBA image adds nothing to the parallelisation study, and a
// single channel keeps memory small on the test host.
type Image struct {
	W, H int
	Pix  []uint8 // row-major, len W*H
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// GenImage synthesises a W×H image with smooth gradients plus noise so
// scaling has real content to average.
func GenImage(seed uint64, w, h int) *Image {
	r := xrand.New(seed)
	im := &Image{W: w, H: h, Pix: make([]uint8, w*h)}
	fx := float64(r.Intn(7) + 1)
	fy := float64(r.Intn(7) + 1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 128 + 64*sin01(fx*float64(x)/float64(w))*sin01(fy*float64(y)/float64(h))
			noise := float64(r.Intn(32)) - 16
			v := base + noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = uint8(v)
		}
	}
	return im
}

// sin01 is a cheap sine surrogate mapping [0,1] to [-1,1] with two lobes;
// using a polynomial keeps image generation fast and allocation-free.
func sin01(t float64) float64 {
	t -= float64(int(t))
	return 16 * t * (1 - t) * (t - 0.5)
}

// GenImageSet returns n images whose dimensions vary in [minDim, maxDim].
func GenImageSet(seed uint64, n, minDim, maxDim int) []*Image {
	r := xrand.New(seed)
	out := make([]*Image, n)
	for i := range out {
		w := minDim + r.Intn(maxDim-minDim+1)
		h := minDim + r.Intn(maxDim-minDim+1)
		out[i] = GenImage(r.Uint64(), w, h)
	}
	return out
}

// Document is a paged text document standing in for a PDF (project 7).
type Document struct {
	Name  string
	Pages []string
}

// DocSpec configures GenDocs.
type DocSpec struct {
	Seed       uint64
	NumDocs    int
	MinPages   int
	MaxPages   int
	WordsPage  int
	NeedleRate float64 // probability a page contains the needle
	Needle     string
}

// DefaultDocSpec returns a 50-document corpus with the needle on ~5% of pages.
func DefaultDocSpec(seed uint64) DocSpec {
	return DocSpec{Seed: seed, NumDocs: 50, MinPages: 10, MaxPages: 100,
		WordsPage: 120, NeedleRate: 0.05, Needle: "pdfNEEDLE"}
}

// GenDocs synthesises the document corpus and returns the number of pages
// that contain the needle.
func GenDocs(spec DocSpec) ([]*Document, int) {
	r := xrand.New(spec.Seed)
	docs := make([]*Document, spec.NumDocs)
	hits := 0
	for i := range docs {
		span := spec.MaxPages - spec.MinPages + 1
		np := spec.MinPages
		if span > 1 {
			np += r.Intn(span)
		}
		pages := make([]string, np)
		for p := range pages {
			words := make([]string, spec.WordsPage)
			for w := range words {
				words[w] = Dictionary[r.Intn(len(Dictionary))]
			}
			if spec.Needle != "" && r.Float64() < spec.NeedleRate {
				words[r.Intn(len(words))] = spec.Needle
				hits++
			}
			pages[p] = strings.Join(words, " ")
		}
		docs[i] = &Document{Name: fmt.Sprintf("doc%03d.pdf", i), Pages: pages}
	}
	return docs, hits
}

// Page is one synthetic web page (project 10): a URL plus a body size that
// drives the simulated transfer time.
type Page struct {
	URL   string
	Bytes int
}

// GenPages returns n synthetic pages with body sizes log-uniform between
// minBytes and maxBytes.
func GenPages(seed uint64, n, minBytes, maxBytes int) []Page {
	r := xrand.New(seed)
	out := make([]Page, n)
	for i := range out {
		// Log-uniform sizes: real page weights span orders of magnitude.
		u := r.Float64()
		size := float64(minBytes) * math.Pow(float64(maxBytes)/float64(minBytes), u)
		out[i] = Page{
			URL:   fmt.Sprintf("http://parc.example/page/%05d", i),
			Bytes: int(size),
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
