package parcvet

import (
	"go/ast"
	"go/token"
	"strings"

	"parc751/internal/report"
)

// suppressDirective is the comment form that silences one finding:
//
//	//parcvet:ignore <rule> <reason>
//
// placed on the flagged line or the line immediately above it. The rule
// must name an analyzer and the reason must be non-empty — a suppression
// without a justification is itself reported, because the course protocol
// treats "silenced, no reason given" as a smell worth a deduction.
const suppressDirective = "parcvet:ignore"

// suppression is one parsed ignore comment.
type suppression struct {
	rule string
	line int
	used bool
}

// suppressionSet holds the ignore comments of one package, keyed by file.
type suppressionSet struct {
	byFile map[string][]*suppression
	// malformed collects ill-formed directives as findings.
	malformed []report.Finding
}

// collectSuppressions scans every comment in the package's files.
func collectSuppressions(fset *token.FileSet, files []*ast.File, relPos func(token.Pos) string) *suppressionSet {
	set := &suppressionSet{byFile: map[string][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+suppressDirective)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					set.malformed = append(set.malformed, report.Finding{
						Tool: "parcvet", Rule: "suppression",
						Pos: relPos(c.Pos()), Severity: report.Warning,
						Detail: "malformed //parcvet:ignore: want `//parcvet:ignore <rule> <reason>` (reason is required)",
					})
					continue
				}
				set.byFile[posn.Filename] = append(set.byFile[posn.Filename], &suppression{
					rule: fields[0],
					line: posn.Line,
				})
			}
		}
	}
	return set
}

// matches reports whether a finding of the given rule at posn is covered
// by a suppression on the same line or the line above.
func (s *suppressionSet) matches(rule string, posn token.Position) bool {
	for _, sup := range s.byFile[posn.Filename] {
		if sup.rule != rule {
			continue
		}
		if sup.line == posn.Line || sup.line == posn.Line-1 {
			sup.used = true
			return true
		}
	}
	return false
}
