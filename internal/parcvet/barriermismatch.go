package parcvet

import (
	"go/ast"
	"go/types"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/report"
)

// BarrierMismatchAnalyzer flags Pyjama barriers and worksharing
// constructs placed under thread-divergent control flow inside an SPMD
// region body. The OpenMP/Pyjama contract (§IV-B and DESIGN.md §8) is
// that every team member encounters the same sequence of worksharing
// constructs; a tc.Barrier() guarded by `if tc.ThreadNum() == 0` is
// reached by one member only and the team deadlocks. This is the static
// sibling of the runtime SPMD-mismatch detector (PYJAMA_DEBUG): the
// runtime catches the (n, schedule) mismatch at the construct, this
// analyzer catches the control-flow shape that produces it.
var BarrierMismatchAnalyzer = &analysis.Analyzer{
	Name: "barriermismatch",
	Doc: `report barriers/worksharing constructs under thread-divergent control flow

Inside a pyjama.Parallel region body, constructs that synchronise the team
(tc.Barrier, tc.Single, tc.Sections, tc.For and friends, ForReduce) must be
encountered by every member. Placing one inside a branch conditioned on
tc.ThreadNum() or tc.SingleNoWait(...), inside a Master/Single/Critical/
Ordered closure, or inside another worksharing loop body means only part of
the team arrives — the rest wait forever. Divergent branches are allowed if
both arms encounter the same number of synchronising constructs.`,
	Severity: report.Error,
	Run:      runBarrierMismatch,
}

func runBarrierMismatch(pass *analysis.Pass) error {
	info := pass.TypesInfo
	pass.Inspect.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		lit := n.(*ast.FuncLit)
		if c, arg, ok := funcLitArg(info, stack); ok && isRegionBody(c, arg) {
			checkRegionBody(pass, lit)
		}
		return true
	})
	return nil
}

// isBarriered reports whether the call synchronises the whole team (has
// an implied or explicit barrier / SPMD pairing requirement).
func isBarriered(c callee) bool {
	switch {
	case c.isMethod(pkgPyjama, "TC", "Barrier"),
		c.isMethod(pkgPyjama, "TC", "Single"),
		c.isMethod(pkgPyjama, "TC", "Sections"),
		c.isMethod(pkgPyjama, "TC", "For"),
		c.isMethod(pkgPyjama, "TC", "ForChunked"),
		c.isMethod(pkgPyjama, "TC", "For2D"),
		c.isMethod(pkgPyjama, "TC", "ForRange"),
		c.is(pkgPyjama, "ForReduce"):
		return true
	// NoWait variants still require SPMD pairing: every member must
	// encounter them to claim its share of the iterations.
	case c.isMethod(pkgPyjama, "TC", "ForNoWait"),
		c.isMethod(pkgPyjama, "TC", "For2DNoWait"):
		return true
	}
	return false
}

// checkRegionBody walks one region body tracking divergent contexts.
func checkRegionBody(pass *analysis.Pass, body *ast.FuncLit) {
	info := pass.TypesInfo

	var walk func(n ast.Node, divergent string)
	walk = func(root ast.Node, divergent string) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				if why, ok := divergentCond(pass, n.Cond); ok {
					// A divergent branch is fine if both arms encounter
					// the same number of synchronising constructs (the
					// team pairs them by per-thread sequence number).
					thenCount := countBarriered(info, n.Body)
					elseCount := 0
					if n.Else != nil {
						elseCount = countBarriered(info, n.Else)
					}
					if thenCount != elseCount {
						pass.Reportf(n.Pos(),
							"branch on %s encounters %d team-synchronising construct(s) in one arm and %d in the other: members taking different arms pair different constructs and the team deadlocks; hoist the barrier out of the branch or balance the arms",
							why, thenCount, elseCount)
					}
					// Still walk the arms to catch deeper misuse, but
					// without re-reporting balanced divergence.
					walk(n.Body, divergent)
					if n.Else != nil {
						walk(n.Else, divergent)
					}
					if n.Init != nil {
						walk(n.Init, divergent)
					}
					return false
				}
				return true
			case *ast.ForStmt:
				if n.Cond != nil {
					if why, ok := divergentCond(pass, n.Cond); ok {
						walk(n.Body, "a loop whose bound depends on "+why)
						if n.Init != nil {
							walk(n.Init, divergent)
						}
						if n.Post != nil {
							walk(n.Post, divergent)
						}
						return false
					}
				}
				return true
			case *ast.SwitchStmt:
				if n.Tag != nil {
					if why, ok := divergentCond(pass, n.Tag); ok {
						walk(n.Body, "a switch on "+why)
						return false
					}
				}
				return true
			case *ast.CallExpr:
				c, ok := calleeOf(info, n)
				if !ok {
					return true
				}
				if isBarriered(c) && divergent != "" {
					pass.Reportf(n.Pos(),
						"%s inside %s: only part of the team reaches it, the rest wait forever at the implied barrier/worksharing pairing", c, divergent)
				}
				walk(n.Fun, divergent)
				for i, a := range n.Args {
					inner, isLit := ast.Unparen(a).(*ast.FuncLit)
					if !isLit {
						walk(a, divergent)
						continue
					}
					switch {
					case isSerialisingBody(c, i):
						walk(inner.Body, "a "+c.String()+" closure (runs on one member only)")
					case c.isMethod(pkgPyjama, "TC", "Sections"):
						walk(inner.Body, "a tc.Sections section (runs on one member only)")
					case isWorksharingBody(c, i):
						walk(inner.Body, "a worksharing loop body (iterations are divided, not replicated)")
					case isRegionBody(c, i) || isTaskBody(c, i):
						// A nested region/task gets its own team/thread:
						// its body is a fresh SPMD context, checked when
						// the inspector reaches that literal.
					default:
						walk(inner.Body, divergent)
					}
				}
				return false
			}
			return true
		})
	}
	walk(body.Body, "")
}

// divergentCond reports whether the condition can evaluate differently on
// different team members for structural (not data) reasons: it mentions
// tc.ThreadNum() or claims a single slot via tc.SingleNoWait.
func divergentCond(pass *analysis.Pass, cond ast.Expr) (string, bool) {
	info := pass.TypesInfo
	var why string
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c, ok := calleeOf(info, call); ok {
			switch {
			case c.isMethod(pkgPyjama, "TC", "ThreadNum"):
				why = "tc.ThreadNum()"
				return false
			case c.isMethod(pkgPyjama, "TC", "SingleNoWait"):
				why = "tc.SingleNoWait(...) (true on exactly one member)"
				return false
			}
		}
		return true
	})
	return why, why != ""
}

// countBarriered counts team-synchronising construct calls lexically
// under n, not descending into nested function literals (their bodies are
// separate contexts).
func countBarriered(info *types.Info, n ast.Node) int {
	count := 0
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c, ok := calleeOf(info, call); ok && isBarriered(c) {
				count++
			}
		}
		return true
	})
	return count
}
