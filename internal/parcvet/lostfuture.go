package parcvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/parcvet/cfg"
	"parc751/internal/report"
)

// LostFutureAnalyzer flags ptask futures whose result is never awaited.
// The paper's Parallel Task lessons (§IV-B) hinge on the future being the
// carrier of both the result and the error: a dropped future silently
// swallows failures (and any panic the runtime converted to an error).
// The check is path-sensitive via the control-flow graph: a task that is
// awaited on the happy path but leaked on an early return is still
// reported.
var LostFutureAnalyzer = &analysis.Analyzer{
	Name: "lostfuture",
	Doc: `report ptask futures that are never awaited

A value returned by ptask.Run/RunAfter/RunMulti/Invoke/Then carries the
task's result and error. Discarding it, or returning from the function on
some path without consuming it (Result, Results, Done, Notify, Cancel, use
as a dependence, or passing it on), loses the error — and the lab's
deliberately-failing tasks go unnoticed. Futures that escape the function
(returned, stored, captured by a closure) are assumed consumed elsewhere.`,
	Severity: report.Warning,
	Run:      runLostFuture,
}

// futureCreators produce a value that must eventually be consumed.
func isFutureCreator(c callee) bool {
	switch {
	case c.is(pkgPtask, "Run"), c.is(pkgPtask, "RunAfter"),
		c.is(pkgPtask, "RunMulti"), c.is(pkgPtask, "Invoke"),
		c.is(pkgPtask, "Then"):
		return true
	}
	return false
}

// consumingMethods, called on a task/future value, count as awaiting it.
var consumingMethods = map[string]bool{
	"Result": true, "Results": true, "Get": true, "TryGet": true,
	"Done": true, "IsDone": true, "Notify": true, "NotifyEach": true,
	"Cancel": true, "Tasks": true,
}

func runLostFuture(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// Graphs are built lazily, one per function body.
	graphs := map[*ast.BlockStmt]*cfg.Graph{}
	graphFor := func(body *ast.BlockStmt) *cfg.Graph {
		g, ok := graphs[body]
		if !ok {
			g = cfg.New(body)
			graphs[body] = g
		}
		return g
	}

	pass.Inspect.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		call := n.(*ast.CallExpr)
		c, ok := calleeOf(info, call)
		if !ok || !isFutureCreator(c) {
			return true
		}
		fnBody, createStmt := enclosingFunc(stack)
		if fnBody == nil || createStmt == nil {
			return true
		}
		switch parent := createStmt.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(parent.X) == call {
				pass.Report(analysis.Diagnostic{
					Pos:         call.Pos(),
					Message:     "result of " + c.String() + " is discarded: the task's result and error are lost; assign it and await it (Result/Notify), or add it as a dependence",
					Severity:    report.Error,
					HasSeverity: true,
				})
			}
			return true
		case *ast.AssignStmt:
			v := assignedVar(info, parent, call)
			if v == nil {
				// `_ = ptask.Run(...)`: an explicit discard — report
				// unless the blank was deliberate enough to suppress.
				if blankAssign(parent, call) {
					pass.Report(analysis.Diagnostic{
						Pos:         call.Pos(),
						Message:     "result of " + c.String() + " is assigned to _: the task's result and error are lost",
						Severity:    report.Error,
						HasSeverity: true,
					})
				}
				return true
			}
			checkFutureVar(pass, graphFor(fnBody), fnBody, parent, call, c, v)
		}
		return true
	})
	return nil
}

// enclosingFunc walks the stack outward to the innermost function body
// and the innermost statement containing the node (the statement that
// owns the CFG node for simple statements).
func enclosingFunc(stack []ast.Node) (*ast.BlockStmt, ast.Stmt) {
	var stmt ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return n.Body, stmt
		case *ast.FuncDecl:
			return n.Body, stmt
		case ast.Stmt:
			if stmt == nil {
				stmt = n
			}
		}
	}
	return nil, stmt
}

// assignedVar returns the variable the creator call is assigned to, or
// nil for blank/complex targets.
func assignedVar(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) *types.Var {
	idx := -1
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call {
			idx = i
		}
	}
	if idx < 0 || len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	id, ok := assign.Lhs[idx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	if obj := info.Uses[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	return nil
}

// blankAssign reports whether the call lands in a blank identifier.
func blankAssign(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call && i < len(assign.Lhs) {
			if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}

// checkFutureVar analyses the uses of v after its creating assignment.
func checkFutureVar(pass *analysis.Pass, g *cfg.Graph, fnBody *ast.BlockStmt, createStmt ast.Stmt, call *ast.CallExpr, c callee, v *types.Var) {
	info := pass.TypesInfo

	type use struct {
		id        *ast.Ident
		consuming bool
		escaping  bool
	}
	var uses []use
	capturedByClosure := false

	ast.Inspect(fnBody, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		uses = append(uses, use{id: id})
		return true
	})
	if len(uses) == 0 {
		pass.Reportf(call.Pos(), "task from %s is never awaited: its result and error are lost; call Result/Notify, pass it as a dependence, or Cancel it", c)
		return
	}

	// Classify each use: a consuming method call, or an escape (any other
	// use — argument, return, store, closure capture — is assumed to hand
	// responsibility elsewhere).
	idToUse := map[*ast.Ident]int{}
	for i, u := range uses {
		idToUse[u.id] = i
	}
	var classify func(n ast.Node, inClosure bool)
	classify = func(root ast.Node, inClosure bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && n != root {
				classify(lit.Body, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if i, tracked := idToUse[id]; tracked && consumingMethods[sel.Sel.Name] {
						uses[i].consuming = true
						if inClosure {
							capturedByClosure = true
						}
					}
				}
			}
			return true
		})
	}
	classify(fnBody, false)
	for i, u := range uses {
		if !u.consuming {
			// Receiver position of a consuming call is handled above;
			// everything else — argument, return value, composite
			// literal, send, range, closure body — escapes.
			uses[i].escaping = true
			if insideClosure(fnBody, u.id, createStmt) {
				capturedByClosure = true
			}
		}
	}
	if capturedByClosure {
		return // consumption may happen on any schedule; stay silent
	}

	// Path check: from the creation, can control reach the function exit
	// without passing a statement that consumes or escapes the future?
	usePos := make([]token.Pos, 0, len(uses))
	for _, u := range uses {
		if u.consuming || u.escaping {
			usePos = append(usePos, u.id.Pos())
		}
	}
	avoid := func(s ast.Stmt) bool {
		for _, owned := range cfg.Shallow(s) {
			for _, p := range usePos {
				if owned.Pos() <= p && p < owned.End() {
					return true
				}
			}
		}
		return false
	}
	if g.CanReachExitAvoiding(createStmt, avoid) {
		pass.Reportf(call.Pos(), "task from %s is not awaited on every path: an early return leaks it and drops its error; consume it (Result/Notify/Cancel) on all paths", c)
	}
}

// insideClosure reports whether the use identifier sits inside a function
// literal nested in fnBody (excluding the creation statement itself).
func insideClosure(fnBody *ast.BlockStmt, id *ast.Ident, createStmt ast.Stmt) bool {
	inside := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Pos() <= id.Pos() && id.Pos() < lit.End() {
				inside = true
			}
			return false
		}
		return !inside
	})
	return inside
}
