// Package loader parses and typechecks Go packages for parcvet using
// nothing but the standard library. The hermetic build environment has no
// module proxy, so golang.org/x/tools/go/packages is unavailable; this
// loader covers the subset parcvet needs:
//
//   - packages inside one module (resolved from the module root by path),
//   - standard-library imports (typechecked from GOROOT source via
//     go/importer's "source" compiler, which needs no export data),
//   - synthetic fixture packages supplied as in-memory source (used by
//     the golden tests and the A7 experiment).
//
// Test files (_test.go) are not loaded: parcvet analyzes production code,
// and external test packages would need a second typechecking universe.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	// Path is the import path ("parc751/internal/pyjama", or a synthetic
	// "fixture/…" path for in-memory sources).
	Path string
	// Dir is the on-disk directory, empty for in-memory packages.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of one module. It caches typechecked packages, so
// loading "./..." typechecks every package (and the stdlib packages they
// reach) exactly once.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// New creates a loader for the module rooted at dir (the directory
// containing go.mod).
func New(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from start to the nearest directory containing
// go.mod.
func FindModuleRoot(start string) (string, error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod found above %s", start)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("loader: no module declaration in %s", gomod)
}

// Fset returns the shared file set (one per loader, so positions from any
// loaded package resolve).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the given patterns to packages and typechecks them.
// Supported patterns: "./..." (every package under the module root),
// "dir/..." (every package under dir), and plain directories (relative to
// the module root or absolute).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			expanded, err := l.expand(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := l.absDir(strings.TrimSuffix(pat, "/..."))
			expanded, err := l.expand(root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			add(l.absDir(pat))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) absDir(p string) string {
	if filepath.IsAbs(p) {
		return filepath.Clean(p)
	}
	return filepath.Join(l.ModuleRoot, p)
}

// expand walks root for directories containing buildable Go files,
// skipping testdata, vendor, and hidden directories.
func (l *Loader) expand(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			out = append(out, p)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// importPathFor maps a module-internal directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "command-line-arguments/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir typechecks the single package in dir under the given import
// path, using build constraints for the current platform and skipping
// test files.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	files := map[string]string{}
	for _, name := range bp.GoFiles {
		files[filepath.Join(dir, name)] = ""
	}
	return l.check(importPath, dir, files)
}

// CheckSource typechecks an in-memory package: files maps file names to
// source text. Imports of module-internal packages resolve against the
// loader's module; everything else resolves as stdlib.
func (l *Loader) CheckSource(importPath string, files map[string]string) (*Package, error) {
	named := map[string]string{}
	for name, src := range files {
		named[name] = src
	}
	return l.check(importPath, "", named)
}

// check parses and typechecks one package. files maps path → source; an
// empty source means "read from disk".
func (l *Loader) check(importPath, dir string, files map[string]string) (*Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("loader: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	var astFiles []*ast.File
	for _, name := range names {
		var src any
		if s := files[name]; s != "" {
			src = s
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(importPath, l.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: astFiles, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves one import during typechecking.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("loader: cgo is not supported")
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
