// Package cfg builds a statement-level control-flow graph for one
// function body — the stdlib-only counterpart of x/tools'
// go/analysis/passes/ctrlflow result. parcvet's path-sensitive analyzers
// (lostfuture) use it to ask reachability questions like "is the function
// exit reachable from this task-creation site without passing a statement
// that awaits the task?".
//
// Granularity: one node per statement. Compound statements (if, for,
// switch, select, range) are represented by a head node holding their
// init/condition expressions; their bodies are separate node chains. The
// graph is conservative in the safe-for-linting direction: constructs it
// cannot model precisely (computed gotos out of scope, dead labels) fall
// back to an edge toward the exit, which can only create false negatives
// for "a path avoids X", never false positives... and the reverse for
// panics: a statement that certainly panics or exits the process gets an
// edge straight to Exit, because for resource-consumption questions an
// abrupt exit is still "left the function without consuming".
package cfg

import (
	"go/ast"
)

// Node is one CFG node.
type Node struct {
	// Stmt is the owning statement; nil for the synthetic entry/exit.
	Stmt  ast.Stmt
	Succs []*Node
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry *Node
	Exit  *Node
	nodes map[ast.Stmt]*Node
}

// builder carries the label environment during construction.
type builder struct {
	g      *Graph
	labels map[string]*labelInfo
	// pendingLabel is the label wrapping the loop statement about to be
	// built; the loop's own case fills in the label's continue target
	// (which for a 3-clause for is the post statement, known only there).
	pendingLabel *labelInfo
}

type labelInfo struct {
	// node is the labeled statement's head node (goto target).
	node *Node
	// brk/cont are set while the labeled loop/switch is being built.
	brk, cont *Node
}

// New builds the CFG for a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		Entry: &Node{},
		Exit:  &Node{},
		nodes: map[ast.Stmt]*Node{},
	}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	// Pre-create label targets so forward gotos resolve.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function literals get their own graphs
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = &labelInfo{node: b.node(ls)}
		}
		return true
	})
	entry := b.seq(body.List, g.Exit, nil, nil)
	g.Entry.Succs = []*Node{entry}
	return g
}

// node returns (creating if needed) the head node for s.
func (b *builder) node(s ast.Stmt) *Node {
	if n, ok := b.g.nodes[s]; ok {
		return n
	}
	n := &Node{Stmt: s}
	b.g.nodes[s] = n
	return n
}

// seq chains stmts so control falls from each to the following, ending at
// next; it returns the entry node of the sequence (next when empty).
func (b *builder) seq(stmts []ast.Stmt, next, brk, cont *Node) *Node {
	entry := next
	for i := len(stmts) - 1; i >= 0; i-- {
		entry = b.stmt(stmts[i], entry, brk, cont)
	}
	return entry
}

// stmt wires one statement given its fall-through successor and the
// innermost enclosing break/continue targets, returning its entry node.
func (b *builder) stmt(s ast.Stmt, next, brk, cont *Node) *Node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.seq(s.List, next, brk, cont)

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		// Expose the label's break target to labeled branch statements
		// inside the labeled construct — before building the body, which
		// is where those branches get wired. The continue target depends
		// on the loop's shape (a 3-clause for continues at its post
		// statement, not its head), so the loop case fills it in via
		// pendingLabel.
		li.brk = next
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			b.pendingLabel = li
		}
		inner := b.stmt(s.Stmt, next, brk, cont)
		b.pendingLabel = nil
		li.node.Succs = appendUnique(li.node.Succs, inner)
		return li.node

	case *ast.IfStmt:
		n := b.node(s)
		then := b.stmt(s.Body, next, brk, cont)
		n.Succs = appendUnique(n.Succs, then)
		if s.Else != nil {
			n.Succs = appendUnique(n.Succs, b.stmt(s.Else, next, brk, cont))
		} else {
			n.Succs = appendUnique(n.Succs, next)
		}
		return n

	case *ast.ForStmt:
		n := b.node(s) // holds init + cond
		var post *Node
		backEdge := n
		if s.Post != nil {
			post = b.stmt(s.Post, n, nil, nil)
			backEdge = post
		}
		if li := b.pendingLabel; li != nil {
			// continue L runs the post statement, same as plain continue.
			li.cont = backEdge
			b.pendingLabel = nil
		}
		body := b.stmt(s.Body, backEdge, next, backEdge)
		n.Succs = appendUnique(n.Succs, body)
		if s.Cond != nil {
			n.Succs = appendUnique(n.Succs, next) // cond may be false
		}
		return n

	case *ast.RangeStmt:
		n := b.node(s)
		if li := b.pendingLabel; li != nil {
			li.cont = n // range loops continue at the head (next element)
			b.pendingLabel = nil
		}
		body := b.stmt(s.Body, n, next, n)
		n.Succs = appendUnique(n.Succs, body)
		n.Succs = appendUnique(n.Succs, next) // empty range
		return n

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		n := b.node(s)
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		}
		// Build clauses last-to-first so fallthrough can target the next
		// clause's body entry.
		fallEntry := next
		entries := make([]*Node, len(clauses))
		for i := len(clauses) - 1; i >= 0; i-- {
			cc := clauses[i].(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			cn := b.node(cc)
			bodyEntry := b.seqWithFallthrough(cc.Body, next, fallEntry, cont)
			cn.Succs = appendUnique(cn.Succs, bodyEntry)
			entries[i] = cn
			fallEntry = bodyEntry
		}
		for _, e := range entries {
			n.Succs = appendUnique(n.Succs, e)
		}
		if !hasDefault {
			n.Succs = appendUnique(n.Succs, next)
		}
		return n

	case *ast.SelectStmt:
		n := b.node(s)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cn := b.node(comm)
			cn.Succs = appendUnique(cn.Succs, b.seq(comm.Body, next, next, cont))
			n.Succs = appendUnique(n.Succs, cn)
		}
		if len(s.Body.List) == 0 {
			n.Succs = appendUnique(n.Succs, next)
		}
		return n

	case *ast.ReturnStmt:
		n := b.node(s)
		n.Succs = appendUnique(n.Succs, b.g.Exit)
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		target := b.branchTarget(s, next, brk, cont)
		n.Succs = appendUnique(n.Succs, target)
		return n

	case *ast.ExprStmt:
		n := b.node(s)
		if isPanicky(s.X) {
			n.Succs = appendUnique(n.Succs, b.g.Exit)
		} else {
			n.Succs = appendUnique(n.Succs, next)
		}
		return n

	default:
		// Assign, Decl, IncDec, Go, Defer, Send, Empty, …: straight line.
		n := b.node(s)
		n.Succs = appendUnique(n.Succs, next)
		return n
	}
}

// seqWithFallthrough is seq for a case-clause body where a trailing
// fallthrough transfers to fallEntry and break transfers past the switch.
func (b *builder) seqWithFallthrough(stmts []ast.Stmt, next, fallEntry, cont *Node) *Node {
	if len(stmts) > 0 {
		if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			n := b.node(br)
			n.Succs = appendUnique(n.Succs, fallEntry)
			return b.seq(stmts[:len(stmts)-1], n, next, cont)
		}
	}
	return b.seq(stmts, next, next, cont)
}

// branchTarget resolves break/continue/goto.
func (b *builder) branchTarget(s *ast.BranchStmt, next, brk, cont *Node) *Node {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if li, ok := b.labels[s.Label.Name]; ok && li.brk != nil {
				return li.brk
			}
		}
		if brk != nil {
			return brk
		}
	case "continue":
		if s.Label != nil {
			if li, ok := b.labels[s.Label.Name]; ok && li.cont != nil {
				return li.cont
			}
		}
		if cont != nil {
			return cont
		}
	case "goto":
		if s.Label != nil {
			if li, ok := b.labels[s.Label.Name]; ok {
				return li.node
			}
		}
	case "fallthrough":
		return next // normally handled by seqWithFallthrough
	}
	return b.g.Exit // conservative: unmodelled transfer leaves the region
}

// isPanicky reports whether the call expression certainly does not return
// (panic, os.Exit, runtime.Goexit). Matching is syntactic: this is a
// lint-grade CFG, and a shadowed `panic` would only make the graph more
// conservative.
func isPanicky(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fn.Sel.Name == "Exit") ||
				(pkg.Name == "runtime" && fn.Sel.Name == "Goexit")
		}
	}
	return false
}

// NodeFor returns the head node of s, or nil if s is not in the graph.
func (g *Graph) NodeFor(s ast.Stmt) *Node { return g.nodes[s] }

// CanReachExitAvoiding reports whether Exit is reachable from the
// successors of from's node without passing through any node whose
// statement satisfies avoid. from itself is not tested.
func (g *Graph) CanReachExitAvoiding(from ast.Stmt, avoid func(ast.Stmt) bool) bool {
	start := g.nodes[from]
	if start == nil {
		// The statement has no node of its own (e.g. it is the init
		// clause of a compound statement). Err toward silence: a lint
		// false positive costs more trust than a false negative.
		return false
	}
	seen := map[*Node]bool{start: true}
	stack := append([]*Node(nil), start.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n == g.Exit {
			return true
		}
		if n.Stmt != nil && avoid(n.Stmt) {
			continue
		}
		stack = append(stack, n.Succs...)
	}
	return false
}

// Shallow returns the AST nodes owned by s's CFG node itself — the
// init/condition parts of compound statements, the whole statement for
// simple ones. Analyzers use it to test "does this node consume X"
// without accidentally matching uses in nested bodies (which are separate
// nodes).
func Shallow(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return nonNil(s.Init, s.Cond)
	case *ast.ForStmt:
		return nonNil(s.Init, s.Cond)
	case *ast.RangeStmt:
		return nonNil(s.Key, s.Value, s.X)
	case *ast.SwitchStmt:
		return nonNil(s.Init, s.Tag)
	case *ast.TypeSwitchStmt:
		return nonNil(s.Init, s.Assign)
	case *ast.SelectStmt:
		return nil
	case *ast.CaseClause:
		out := make([]ast.Node, 0, len(s.List))
		for _, e := range s.List {
			out = append(out, e)
		}
		return out
	case *ast.CommClause:
		return nonNil(s.Comm)
	case *ast.LabeledStmt:
		return nil
	case *ast.BlockStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

func appendUnique(ns []*Node, n *Node) []*Node {
	for _, e := range ns {
		if e == n {
			return ns
		}
	}
	return append(ns, n)
}

func nonNil(ns ...ast.Node) []ast.Node {
	var out []ast.Node
	for _, n := range ns {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}
