package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns it with a lookup
// from marker comments: the statement starting on the line of a
// `/*name*/` marker is addressable by name.
func parseBody(t *testing.T, body string) (*ast.BlockStmt, func(substr string) ast.Stmt) {
	t.Helper()
	src := "package p\nfunc f(a, b int) int {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	find := func(substr string) ast.Stmt {
		var hit ast.Stmt
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			s, ok := n.(ast.Stmt)
			if !ok || hit != nil {
				return hit == nil
			}
			start := fset.Position(s.Pos()).Offset
			end := fset.Position(s.End()).Offset
			if strings.Contains(src[start:end], substr) && hit == nil {
				// Keep the *outermost* statement containing the marker
				// only if it IS the marker's own statement: prefer the
				// innermost, so keep descending.
				hit = s
			}
			return true
		})
		if hit == nil {
			t.Fatalf("no statement containing %q", substr)
		}
		// Descend to the innermost statement containing the marker.
		for {
			inner := hit
			ast.Inspect(hit, func(n ast.Node) bool {
				s, ok := n.(ast.Stmt)
				if !ok || s == hit {
					return true
				}
				start := fset.Position(s.Pos()).Offset
				end := fset.Position(s.End()).Offset
				if strings.Contains(src[start:end], substr) {
					inner = s
					return false
				}
				return true
			})
			if inner == hit {
				return hit
			}
			hit = inner
		}
	}
	return fn.Body, find
}

func avoidContaining(find func(string) ast.Stmt, substr string) func(ast.Stmt) bool {
	target := find(substr)
	return func(s ast.Stmt) bool { return s == target }
}

func TestStraightLineMustPass(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	x = x + b
	return x`)
	g := New(body)
	// From `x := a`, every path to the exit passes `return x`.
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("straight line claimed to bypass the return")
	}
}

func TestEarlyReturnBypasses(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	if a > 0 {
		return 0
	}
	return x`)
	g := New(body)
	if !g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("the early return should reach the exit without passing `return x`")
	}
}

func TestLoopBackEdge(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	for i := 0; i < b; i++ {
		x++
	}
	return x`)
	g := New(body)
	// The loop can run zero times, but the only exit still passes return.
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("loop body claimed a path around the return")
	}
	// Avoiding the loop head: unreachable exit (the for is the only route).
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "for i := 0")) {
		t.Error("exit should be unreachable when avoiding the only loop head")
	}
}

func TestBreakAndContinue(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	for {
		if a > 0 {
			break
		}
		if b > 0 {
			continue
		}
		x++
	}
	return x`)
	g := New(body)
	// break leaves the infinite loop, so the return is still on every path.
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("break path claimed to bypass the return")
	}
}

func TestPanicReachesExit(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	if a > 0 {
		panic("boom")
	}
	return x`)
	g := New(body)
	// The panic leaves the function without passing the return.
	if !g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("panic should count as leaving without passing the return")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	switch a {
	case 0:
		x = 1
	case 1:
		x = 2
	default:
		return 0
	}
	return x`)
	g := New(body)
	if !g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("the default arm's return should bypass the final return")
	}
	if g.CanReachExitAvoiding(find("x := a"), func(s ast.Stmt) bool {
		_, isRet := s.(*ast.ReturnStmt)
		return isRet
	}) {
		t.Error("every path must pass some return")
	}
}

func TestLabeledContinueHitsPost(t *testing.T) {
	body, find := parseBody(t, `
	x := a
L:
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if a > 0 {
				continue L
			}
			x++
		}
	}
	return x`)
	g := New(body)
	// continue L transfers to the OUTER loop's post statement (i++), not
	// its head: from the continue there is no path to the exit that skips
	// i++.
	if g.CanReachExitAvoiding(find("continue L"), avoidContaining(find, "i++")) {
		t.Error("continue L claimed a path to exit that skips the outer post statement")
	}
	// But it does skip the rest of the inner loop: j++ is avoidable.
	if !g.CanReachExitAvoiding(find("continue L"), avoidContaining(find, "j++")) {
		t.Error("continue L should bypass the inner loop's post statement")
	}
}

func TestLabeledBreakLeavesOuterLoop(t *testing.T) {
	body, find := parseBody(t, `
	x := a
L:
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if a > 0 {
				break L
			}
			x++
		}
	}
	return x`)
	g := New(body)
	// break L jumps past both loops straight to the return: neither post
	// statement is on the path.
	if g.CanReachExitAvoiding(find("break L"), avoidContaining(find, "return x")) {
		t.Error("break L claimed to bypass the final return")
	}
	if !g.CanReachExitAvoiding(find("break L"), avoidContaining(find, "i++")) {
		t.Error("break L should not pass the outer post statement")
	}
	if !g.CanReachExitAvoiding(find("break L"), avoidContaining(find, "j++")) {
		t.Error("break L should not pass the inner post statement")
	}
}

func TestRangeLoopEdges(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	xs := []int{1, 2, 3}
	for _, v := range xs {
		if v > 0 {
			continue
		}
		x += v
	}
	return x`)
	g := New(body)
	// A range loop may iterate zero times: from before the loop the body is
	// avoidable, but the return is not.
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("range loop claimed a path around the return")
	}
	if !g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "x += v")) {
		t.Error("empty-range edge missing: body should be avoidable")
	}
	// continue targets the range head: from the continue, exit is reachable
	// only through the head, then the return.
	if g.CanReachExitAvoiding(find("continue"), avoidContaining(find, "for _, v := range xs")) {
		t.Error("continue in range should return to the loop head")
	}
	if !g.CanReachExitAvoiding(find("continue"), avoidContaining(find, "x += v")) {
		t.Error("continue should skip the rest of the body")
	}
}

func TestLabeledRangeContinue(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	xs := []int{1, 2, 3}
L:
	for _, v := range xs {
		for j := 0; j < b; j++ {
			if v > 0 {
				continue L
			}
			x++
		}
	}
	return x`)
	g := New(body)
	// continue L on a range loop goes back to the range head.
	if g.CanReachExitAvoiding(find("continue L"), avoidContaining(find, "for _, v := range xs")) {
		t.Error("continue L should pass through the range head")
	}
	if !g.CanReachExitAvoiding(find("continue L"), avoidContaining(find, "j++")) {
		t.Error("continue L should bypass the inner loop post")
	}
}

func TestGotoFreeNesting(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	for i := 0; i < b; i++ {
		switch {
		case a > 0:
			for j := 0; j < b; j++ {
				if b > 1 {
					break
				}
				x++
			}
		default:
			x--
		}
	}
	return x`)
	g := New(body)
	// The unlabeled break leaves only the inner loop: every path from it
	// still passes the outer post statement before the return.
	if g.CanReachExitAvoiding(find("break"), avoidContaining(find, "i++")) {
		t.Error("unlabeled break claimed to escape the outer loop")
	}
	if g.CanReachExitAvoiding(find("x := a"), avoidContaining(find, "return x")) {
		t.Error("nesting claimed a path around the return")
	}
}

func TestUnknownStatementIsSilent(t *testing.T) {
	body, _ := parseBody(t, `
	return a`)
	g := New(body)
	// A statement that is not in the graph must answer false (err toward
	// silence for analyzers).
	bogus := &ast.EmptyStmt{}
	if g.CanReachExitAvoiding(bogus, func(ast.Stmt) bool { return false }) {
		t.Error("unknown statement should not claim reachability")
	}
}

func TestShallowOwnsHeaderOnly(t *testing.T) {
	body, find := parseBody(t, `
	x := a
	if x > 0 {
		x = 1
	}
	return x`)
	_ = body
	ifStmt := find("if x > 0").(*ast.IfStmt)
	owned := Shallow(ifStmt)
	for _, n := range owned {
		if n == ifStmt.Body {
			t.Error("Shallow must not own the if body")
		}
	}
	if len(owned) == 0 {
		t.Error("Shallow(if) should own the condition")
	}
}
