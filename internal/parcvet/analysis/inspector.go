package analysis

import (
	"go/ast"
	"reflect"
)

// Inspector is the shared AST traversal helper, the counterpart of
// x/tools' go/ast/inspector result that upstream analyzers obtain via
// Requires: inspect.Analyzer. One Inspector is built per package and
// shared by every analyzer in the run.
type Inspector struct {
	files []*ast.File
}

// NewInspector builds an inspector over the package's files.
func NewInspector(files []*ast.File) *Inspector {
	return &Inspector{files: files}
}

// Preorder visits every node in depth-first preorder, restricted to the
// node types named in the (possibly empty, meaning all) filter.
func (in *Inspector) Preorder(filter []ast.Node, fn func(ast.Node)) {
	want := typeSet(filter)
	for _, f := range in.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if want == nil || want[reflect.TypeOf(n)] {
				fn(n)
			}
			return true
		})
	}
}

// WithStack is Preorder plus the ancestor stack: stack[0] is the
// *ast.File, stack[len-1] is n itself. The visit function returns whether
// to descend into n's children.
func (in *Inspector) WithStack(filter []ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	want := typeSet(filter)
	for _, f := range in.files {
		var stack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			stack = append(stack, n)
			descend := true
			if want == nil || want[reflect.TypeOf(n)] {
				descend = fn(n, stack)
			}
			if descend {
				for _, child := range children(n) {
					visit(child)
				}
			}
			stack = stack[:len(stack)-1]
			return descend
		}
		visit(f)
	}
}

// children lists n's direct AST children in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first { // the Inspect root is n itself
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false // direct children only; recursion happens in visit
	})
	return out
}

func typeSet(filter []ast.Node) map[reflect.Type]bool {
	if len(filter) == 0 {
		return nil
	}
	m := make(map[reflect.Type]bool, len(filter))
	for _, n := range filter {
		m[reflect.TypeOf(n)] = true
	}
	return m
}
