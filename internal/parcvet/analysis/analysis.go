// Package analysis is a deliberately small, stdlib-only reimplementation
// of the golang.org/x/tools/go/analysis vocabulary: Analyzer, Pass,
// Diagnostic, SuggestedFix. The build environment for this repository is
// hermetic (no module proxy), so vendoring x/tools is not an option; the
// parcvet analyzers are written against this shim instead. The shapes
// match the upstream API closely enough that porting an analyzer between
// the two is mechanical — that is the point: students read real go/vet
// analyzer sources and ours side by side in the lab.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"parc751/internal/report"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //parcvet:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `parcvet -list`:
	// first line is the summary, the rest explains the invariant.
	Doc string
	// Severity is the default severity of this analyzer's diagnostics.
	Severity report.Severity
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one package's worth of material to an analyzer, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Inspect is the shared traversal helper, the counterpart of the
	// upstream `inspect` pass result every analyzer Requires.
	Inspect *Inspector
	// Report delivers a diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with the analyzer's default
// severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos token.Pos
	End token.Pos // optional
	// Message is the human-readable explanation.
	Message string
	// Severity overrides the analyzer default when set explicitly via
	// HasSeverity.
	Severity    report.Severity
	HasSeverity bool
	// SuggestedFixes are mechanical rewrites that remove the finding.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained mechanical rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText; End == NoPos means insert at
// Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
