// Package vettest is the shared golden-fixture harness for the repo's
// static-analysis suites (parcvet, parcpar). Fixture files under
// testdata/src/<name> carry `// want `regexp“ comments; CheckWants
// cross-checks a run's findings against them and reports *every*
// mismatch — all unexpected findings and all unmatched expectations,
// in deterministic (file, line, pattern) order — so a fixture edit
// yields one complete diff instead of a first-failure breadcrumb trail.
package vettest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"parc751/internal/report"
)

// WantRe matches a `// want `regexp“ fixture expectation.
var WantRe = regexp.MustCompile("// want `([^`]*)`")

type wantKey struct {
	file string
	line int
}

type want struct {
	key wantKey
	re  *regexp.Regexp
}

// CheckWants cross-checks findings against the fixtures' `// want`
// comments: every want must be matched by a finding's Detail on its
// line, and every finding must be expected by a want. All mismatches
// are reported (sorted by position) before the test fails.
func CheckWants(t testing.TB, fset *token.FileSet, files []*ast.File, findings []report.Finding) {
	t.Helper()

	var wants []want
	byKey := map[wantKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := WantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				posn := fset.Position(c.Pos())
				wants = append(wants, want{wantKey{filepath.Base(posn.Filename), posn.Line}, re})
			}
		}
	}
	for i := range wants {
		byKey[wants[i].key] = append(byKey[wants[i].key], &wants[i])
	}

	matched := map[*want]bool{}
	var unexpected []string
	for _, f := range findings {
		file, line, err := splitPos(f.Pos)
		if err != nil {
			unexpected = append(unexpected, fmt.Sprintf("unparseable finding position %q", f.Pos))
			continue
		}
		found := false
		for _, w := range byKey[wantKey{file, line}] {
			if w.re.MatchString(f.Detail) {
				matched[w] = true
				found = true
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("unexpected finding at %s: %s", f.Pos, f.Detail))
		}
	}

	var unmatched []string
	for i := range wants {
		w := &wants[i]
		if !matched[w] {
			unmatched = append(unmatched, fmt.Sprintf("%s:%d: expected finding matching %q, got none", w.key.file, w.key.line, w.re))
		}
	}

	sort.Strings(unexpected)
	sort.Strings(unmatched)
	for _, msg := range unexpected {
		t.Errorf("%s", msg)
	}
	for _, msg := range unmatched {
		t.Errorf("%s", msg)
	}
}

// splitPos parses "path:line:col" (also tolerating "path:line") into
// the base filename and line number.
func splitPos(pos string) (string, int, error) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return "", 0, fmt.Errorf("no line in %q", pos)
	}
	line, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, err
	}
	return filepath.Base(parts[0]), line, nil
}
