package parcvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/report"
)

// LoopIndexCaptureAnalyzer flags the classic stale-loop-variable capture:
// a closure launched asynchronously (go statement, ptask creator, pool
// submit) from inside a loop that reads the loop variable instead of a
// per-iteration copy. Go 1.22 made `for i :=` per-iteration, but the
// paper's labs still teach the pattern (the course's Java side has no such
// rescue, and `i` declared *outside* the loop is stale in any Go version),
// so the analyzer reports it as a teaching warning with the mechanical
// `i := i` shadowing fix.
var LoopIndexCaptureAnalyzer = &analysis.Analyzer{
	Name: "loopindexcapture",
	Doc: `report async closures capturing an enclosing loop variable

A function literal handed to a go statement inside a parallel-construct
body, or to a task launcher (ptask.Run and friends, Pool.Submit) anywhere,
outlives the loop iteration that created it. Capturing the loop variable in
such a closure is the textbook stale-index bug: by the time the task runs,
the variable holds a later iteration's value (always, for variables
declared outside the loop; pre-Go-1.22 semantics for the classic form).
Shadow it with a per-iteration copy (i := i) or pass it as a parameter.`,
	Severity: report.Warning,
	Run:      runLoopIndexCapture,
}

func runLoopIndexCapture(pass *analysis.Pass) error {
	info := pass.TypesInfo
	pass.Inspect.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		lit := n.(*ast.FuncLit)

		launch, why := asyncLaunch(info, stack)
		if !launch {
			return true
		}
		// Loop variables of loops enclosing the launch site, innermost
		// first, with the loop whose body the closure sits in.
		loops := enclosingLoopVars(info, stack, lit)
		if len(loops) == 0 {
			return true
		}

		reported := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			for _, lv := range loops {
				if obj != lv.obj {
					continue
				}
				reported[obj] = true
				diag := analysis.Diagnostic{
					Pos: id.Pos(),
					Message: "closure " + why + " captures loop variable " + id.Name +
						": the task may run after the iteration advances and observe a stale index; shadow it with a per-iteration copy or pass it as a parameter",
				}
				if lv.fixable {
					diag.SuggestedFixes = []analysis.SuggestedFix{{
						Message: "shadow " + id.Name + " with a per-iteration copy",
						TextEdits: []analysis.TextEdit{{
							Pos:     lv.bodyLbrace + 1,
							End:     lv.bodyLbrace + 1,
							NewText: []byte("\n" + id.Name + " := " + id.Name),
						}},
					}}
				}
				pass.Report(diag)
			}
			return true
		})
		return true
	})
	return nil
}

// asyncLaunch reports whether the function literal at the top of the
// stack is executed asynchronously with respect to the launching loop:
// the operand of a go statement inside a parallel-construct body, or the
// body argument of a task creator / pool submit anywhere. (A bare go
// statement in sequential code is gopls/vet territory; parcvet cares
// about the course's constructs.)
func asyncLaunch(info *types.Info, stack []ast.Node) (bool, string) {
	if c, arg, ok := funcLitArg(info, stack); ok {
		if isTaskBody(c, arg) {
			return true, "passed to " + c.String()
		}
		return false, ""
	}
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == stack[len(stack)-1] {
			if _, ok := stack[len(stack)-3].(*ast.GoStmt); ok && insideParallelConstruct(info, stack[:len(stack)-3]) {
				return true, "launched by a go statement in a parallel-construct body"
			}
		}
	}
	return false, ""
}

// insideParallelConstruct reports whether any function literal on the
// stack is a worksharing / region / task / sections body.
func insideParallelConstruct(info *types.Info, stack []ast.Node) bool {
	for i, n := range stack {
		if _, ok := n.(*ast.FuncLit); !ok {
			continue
		}
		if c, arg, ok := funcLitArg(info, stack[:i+1]); ok {
			if isWorksharingBody(c, arg) || isRegionBody(c, arg) || isTaskBody(c, arg) ||
				c.isMethod(pkgPyjama, "TC", "Sections") {
				return true
			}
		}
	}
	return false
}

// loopVar is one loop variable of a loop that encloses the launch site.
type loopVar struct {
	obj types.Object
	// fixable is true when the variable is declared by the loop header
	// itself (`for i := …` / `for i, v := range …`), where inserting a
	// shadowing copy at the top of the loop body is a complete fix.
	fixable    bool
	bodyLbrace token.Pos // position of the loop body's { when fixable
}

// enclosingLoopVars collects the loop variables of every for/range
// statement on the stack below the innermost enclosing function boundary
// (a loop outside the enclosing closure cannot interleave with it), plus
// loop-scoped variables declared outside the loop header but assigned by
// it — the `var i int; for i = 0; …` form, which is stale in every Go
// version.
func enclosingLoopVars(info *types.Info, stack []ast.Node, lit *ast.FuncLit) []loopVar {
	var out []loopVar
	// Walk outward; stop at the first function boundary other than lit
	// itself (loops beyond it run on a different activation record).
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return out
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if obj := objOf(info, id); obj != nil {
						out = append(out, loopVar{
							obj:        obj,
							fixable:    info.Defs[id] != nil,
							bodyLbrace: n.Body.Lbrace,
						})
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				id, ok := e.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := objOf(info, id); obj != nil {
					out = append(out, loopVar{
						obj:        obj,
						fixable:    info.Defs[id] != nil,
						bodyLbrace: n.Body.Lbrace,
					})
				}
			}
		}
	}
	return out
}
