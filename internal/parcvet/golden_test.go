package parcvet

import (
	"path/filepath"
	"strings"
	"testing"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/parcvet/loader"
	"parc751/internal/parcvet/vettest"
)

// TestGolden runs each analyzer alone over its fixture package under
// testdata/src/<name> and checks the findings against the fixtures' `//
// want` comments: every want must be matched by a finding on its line,
// and every finding must be expected by a want. good.go files carry no
// wants, so any finding there is a false positive and fails the test.
func TestGolden(t *testing.T) {
	root := moduleRootOrSkip(t)
	for _, an := range Analyzers() {
		t.Run(an.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "parcvet", "testdata", "src", an.Name)
			l, err := loader.New(root)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDir(dir, "parcvettest/"+an.Name)
			if err != nil {
				t.Fatalf("loading fixture package: %v", err)
			}
			findings := AnalyzePackage(l, pkg, []*analysis.Analyzer{an})
			vettest.CheckWants(t, l.Fset(), pkg.Files, findings)
		})
	}
}

// TestSuppression checks the //parcvet:ignore contract on the suppress
// fixture: the well-formed directive silences its sharedwrite finding,
// the reason-less one is reported as malformed and silences nothing.
func TestSuppression(t *testing.T) {
	root := moduleRootOrSkip(t)
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "internal", "parcvet", "testdata", "src", "suppress"), "parcvettest/suppress")
	if err != nil {
		t.Fatal(err)
	}
	findings := AnalyzePackage(l, pkg, []*analysis.Analyzer{SharedWriteAnalyzer})

	var malformed, suppressedHit, unsuppressed int
	for _, f := range findings {
		switch {
		case f.Rule == "suppression":
			malformed++
		case strings.Contains(f.Detail, `"sum"`):
			suppressedHit++
		case strings.Contains(f.Detail, `"n"`):
			unsuppressed++
		}
	}
	if malformed != 1 {
		t.Errorf("want exactly 1 malformed-suppression finding, got %d in %v", malformed, findings)
	}
	if suppressedHit != 0 {
		t.Errorf("the justified //parcvet:ignore should silence the sum finding; got %v", findings)
	}
	if unsuppressed != 1 {
		t.Errorf("the reason-less directive must not suppress; want the n finding, got %v", findings)
	}
}

// TestAnalyzerMetadata keeps the suite's registry sane: unique names,
// non-empty docs, and ByName round-trips.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, an := range Analyzers() {
		if an.Name == "" || an.Doc == "" || an.Run == nil {
			t.Errorf("analyzer %+v missing name/doc/run", an)
		}
		if seen[an.Name] {
			t.Errorf("duplicate analyzer name %q", an.Name)
		}
		seen[an.Name] = true
		got, err := ByName(an.Name)
		if err != nil || len(got) != 1 || got[0] != an {
			t.Errorf("ByName(%q) = %v, %v", an.Name, got, err)
		}
	}
	if _, err := ByName("nosuchpass"); err == nil {
		t.Error("ByName should reject unknown analyzer names")
	}
	if all, err := ByName(""); err != nil || len(all) != len(Analyzers()) {
		t.Errorf("ByName(\"\") should return the full suite, got %v, %v", all, err)
	}
}

func moduleRootOrSkip(t *testing.T) string {
	t.Helper()
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Skipf("no module root: %v", err)
	}
	return root
}
