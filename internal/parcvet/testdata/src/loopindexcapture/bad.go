// Package loopindexcapture holds misuse fixtures: async closures
// capturing the loop variable of an enclosing loop.
package loopindexcapture

import (
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

// sharedIndex: i is declared outside the loop, so every task sees the
// final value — stale in every Go version.
func sharedIndex(rt *ptask.Runtime, xs []int) {
	var i int
	for i = 0; i < len(xs); i++ {
		t := ptask.Run(rt, func() (int, error) {
			return xs[i], nil // want `captures loop variable i`
		})
		t.Notify(func(int, error) {})
	}
}

// rangeValue: the classic per-iteration capture, reported as a teaching
// warning with the shadowing fix.
func rangeValue(rt *ptask.Runtime, xs []int) {
	for _, x := range xs {
		t := ptask.Run(rt, func() (int, error) {
			return x * 2, nil // want `captures loop variable x`
		})
		t.Notify(func(int, error) {})
	}
}

// goInRegion: a goroutine launched from a parallel-construct body.
func goInRegion(xs []int) {
	pyjama.Parallel(2, func(tc *pyjama.TC) {
		tc.Master(func() {
			for i := 0; i < len(xs); i++ {
				go func() {
					xs[i] = 0 // want `captures loop variable i`
				}()
			}
		})
	})
}
