package loopindexcapture

import (
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

// shadowed: the per-iteration copy breaks the capture.
func shadowed(rt *ptask.Runtime, xs []int) {
	var i int
	for i = 0; i < len(xs); i++ {
		i := i
		t := ptask.Run(rt, func() (int, error) { return xs[i], nil })
		t.Notify(func(int, error) {})
	}
}

// parameterised: the index arrives as a closure parameter, not a capture.
func parameterised(rt *ptask.Runtime, xs []int) {
	m := ptask.RunMulti(rt, len(xs), func(i int) (int, error) {
		return xs[i] * 2, nil
	})
	m.Notify(func([]int, error) {})
}

// worksharing: pyjama hands the index in, so there is nothing to capture.
func worksharing(xs []int) {
	pyjama.ParallelFor(2, len(xs), pyjama.Static(0), func(i int) {
		xs[i] *= 2
	})
}
