package reductionpurity

import "parc751/internal/reduction"

// pureSum is the canonical pure reducer: neutral identity, argument-only
// combine.
func pureSum(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 0 },
		Combine:  func(a, b int) int { return a + b },
	}
	return reduction.Fold(r, xs)
}

// pureProd: 1 is neutral for multiplication.
func pureProd(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 1 },
		Combine:  func(a, b int) int { return a * b },
	}
	return reduction.Fold(r, xs)
}

// freshMaps constructs a new map per identity call and mutates only its
// first argument — the documented accumulating convention.
func freshMaps(parts []map[string]int) map[string]int {
	r := reduction.Reducer[map[string]int]{
		Identity: func() map[string]int { return map[string]int{} },
		Combine: func(a, b map[string]int) map[string]int {
			for k, v := range b {
				a[k] += v
			}
			return a
		},
	}
	return reduction.Fold(r, parts)
}
