// Package reductionpurity holds misuse fixtures: hand-rolled reducers
// that break the purity/neutrality contract.
package reductionpurity

import (
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

func impureCombine(xs []int) int {
	calls := 0
	r := reduction.Reducer[int]{
		Identity: func() int { return 0 },
		Combine: func(a, b int) int {
			calls++ // want `combiner mutates captured variable "calls"`
			return a + b
		},
	}
	_ = calls
	return pyjama.ParallelForReduce(4, len(xs), pyjama.Static(0), r,
		func(i, acc int) int { return acc + xs[i] })
}

func nonNeutralSum(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 1 }, // want `identity 1 is not neutral`
		Combine:  func(a, b int) int { return a + b },
	}
	return reduction.Fold(r, xs)
}

func nonNeutralProd(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 0 }, // want `identity 0 is not neutral`
		Combine:  func(a, b int) int { return a * b },
	}
	return reduction.Fold(r, xs)
}

func sharedIdentity(parts [][]int) []int {
	scratch := []int{}
	r := reduction.Reducer[[]int]{
		Identity: func() []int { return scratch }, // want `identity returns captured "scratch"`
		Combine:  func(a, b []int) []int { return append(a, b...) },
	}
	return reduction.Tree(r, parts)
}
