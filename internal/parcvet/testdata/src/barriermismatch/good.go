package barriermismatch

import "parc751/internal/pyjama"

// balanced: both arms of the divergent branch encounter the same number
// of synchronising constructs, so the per-thread pairing stays aligned.
func balanced(xs []int) {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		if tc.ThreadNum() == 0 {
			tc.Barrier()
			xs[0] = 1
		} else {
			tc.Barrier()
		}
	})
}

// straightLine: every member encounters the same construct sequence.
func straightLine(xs []int) {
	pyjama.Parallel(2, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) { xs[i]++ })
		tc.Barrier()
		tc.Master(func() { xs[0] = 0 })
		tc.Barrier()
	})
}

// dataDivergence: a branch on data (not thread identity) is outside this
// analyzer's scope — the runtime SPMD detector owns that case.
func dataDivergence(xs []int, n int) {
	pyjama.Parallel(2, func(tc *pyjama.TC) {
		if n > 0 {
			tc.Barrier()
		}
	})
}
