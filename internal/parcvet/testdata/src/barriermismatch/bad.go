// Package barriermismatch holds misuse fixtures: team-synchronising
// constructs under thread-divergent control flow.
package barriermismatch

import "parc751/internal/pyjama"

func divergentBarrier() {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		if tc.ThreadNum() == 0 { // want `encounters 1 team-synchronising construct`
			tc.Barrier()
		}
	})
}

func barrierInSingle() {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.Single(func() {
			tc.Barrier() // want `runs on one member only`
		})
	})
}

func forInWorksharing(xs []int) {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			tc.Barrier() // want `iterations are divided, not replicated`
		})
	})
}

func worksharingInMaster(xs []int) {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.Master(func() {
			tc.For(len(xs), pyjama.Static(0), func(i int) { // want `runs on one member only`
				xs[i]++
			})
		})
	})
}
