// Package suppress exercises the //parcvet:ignore directive: a
// well-formed suppression silences its finding, a reason-less one is
// itself reported and silences nothing.
package suppress

import "parc751/internal/pyjama"

func suppressed(xs []int) int {
	sum := 0
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			//parcvet:ignore sharedwrite lab 3 demonstrates this exact race on purpose
			sum += xs[i]
		})
	})
	return sum
}

func reasonless(xs []int) int {
	n := 0
	pyjama.Parallel(2, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			n += xs[i] //parcvet:ignore sharedwrite
		})
	})
	return n
}
