// Package sharedwrite holds misuse fixtures: racy writes to captured
// variables in concurrently-executed closures.
package sharedwrite

import (
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

func racySum(xs []int) int {
	sum := 0
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			sum += xs[i] // want `write to captured variable "sum"`
		})
	})
	return sum
}

func racyMap(xs []int) map[int]int {
	hist := map[int]int{}
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			hist[xs[i]]++ // want `concurrent write to captured map "hist"`
		})
	})
	return hist
}

func racySlot(xs, out []int, k int) {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			out[k] = xs[i] // want `index that is not derived from the loop variable`
		})
	})
}

func racyTask(rt *ptask.Runtime) {
	hits := 0
	t := ptask.Run(rt, func() (int, error) {
		hits++ // want `write to captured variable "hits"`
		return hits, nil
	})
	t.Notify(func(int, error) {})
}
