package sharedwrite

import (
	"sync"

	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

// distinctSlots writes each iteration to its own element — the idiomatic
// safe output pattern.
func distinctSlots(xs, out []int) {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			out[i] = xs[i] * 2
		})
	})
}

// perMember accumulates into a region-body local (private to each member,
// because every member runs the region body in its own frame) and merges
// under tc.Critical.
func perMember(xs []int) int {
	total := 0
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		mine := 0
		tc.ForNoWait(len(xs), pyjama.Static(0), func(i int) {
			mine += xs[i]
		})
		tc.Critical("merge", func() {
			total += mine
		})
	})
	return total
}

// mutexGuarded serialises the shared update with a sync.Mutex held around
// the write.
func mutexGuarded(xs []int) int {
	var mu sync.Mutex
	total := 0
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		sub := 0
		tc.ForNoWait(len(xs), pyjama.Static(0), func(i int) { sub += xs[i] })
		mu.Lock()
		total += sub
		mu.Unlock()
	})
	return total
}

// reduced restructures the accumulation as a reduction — the course's
// preferred fix.
func reduced(xs []int) int {
	return pyjama.ParallelForReduce(4, len(xs), pyjama.Static(0), reduction.Sum[int](),
		func(i, acc int) int { return acc + xs[i] })
}

// threadSlots writes through tc.ThreadNum() — one slot per member.
func threadSlots(xs []int, nthreads int) []int {
	partial := make([]int, nthreads)
	pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
		tc.ForNoWait(len(xs), pyjama.Static(0), func(i int) {
			partial[tc.ThreadNum()] += xs[i]
		})
	})
	return partial
}
