package guiblock

import (
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

// offloaded launches the work off-thread and hops back with Notify: the
// handler itself never blocks.
func offloaded(rt *ptask.Runtime, loop *eventloop.Loop) {
	_ = loop.InvokeLater(func() {
		t := ptask.Run(rt, func() (int, error) {
			time.Sleep(time.Millisecond) // fine: runs on a pool worker
			return 1, nil
		})
		t.Notify(func(int, error) {})
	})
}

// asyncRegion uses pyjama.Async, the non-blocking region launcher made
// for exactly this situation.
func asyncRegion(loop *eventloop.Loop, xs []int) {
	_ = loop.InvokeLater(func() {
		pyjama.Async(loop, 2, func(tc *pyjama.TC) {
			tc.For(len(xs), pyjama.Static(0), func(i int) { xs[i]++ })
		}, func(error) {})
	})
}

// goroutineEscape: a go statement leaves the dispatch thread, so blocking
// inside it is fine.
func goroutineEscape(loop *eventloop.Loop) {
	_ = loop.InvokeLater(func() {
		go func() { time.Sleep(time.Millisecond) }()
	})
}
