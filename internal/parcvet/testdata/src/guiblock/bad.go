// Package guiblock holds misuse fixtures: blocking calls inside
// event-dispatch callbacks.
package guiblock

import (
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

func blockingHandler(rt *ptask.Runtime, loop *eventloop.Loop) {
	t := ptask.Run(rt, func() (int, error) { return 1, nil })
	_ = loop.InvokeLater(func() {
		_, _ = t.Result()            // want `waits for the task`
		time.Sleep(time.Millisecond) // want `sleeps`
	})
}

func doneReceiveInHandler(rt *ptask.Runtime, loop *eventloop.Loop) {
	t := ptask.Run(rt, func() (int, error) { return 1, nil })
	pyjama.OnGUI(loop, func() {
		<-t.Done() // want `blocks the GUI dispatch thread`
	})
}

func regionInNotify(rt *ptask.Runtime, xs []int) {
	t := ptask.Run(rt, func() (int, error) { return 1, nil })
	t.Notify(func(int, error) {
		pyjama.Parallel(2, func(tc *pyjama.TC) { // want `runs a synchronous parallel region`
			tc.For(len(xs), pyjama.Static(0), func(i int) { _ = xs[i] })
		})
	})
}
