package lostfuture

import "parc751/internal/ptask"

// awaited consumes the result on the only path.
func awaited(rt *ptask.Runtime) int {
	t := ptask.Run(rt, func() (int, error) { return 3, nil })
	v, _ := t.Result()
	return v
}

// notified hands the result to a callback — consumption by Notify.
func notified(rt *ptask.Runtime) {
	t := ptask.Run(rt, func() (int, error) { return 3, nil })
	t.Notify(func(int, error) {})
}

// escaped returns the future: the caller owns consumption.
func escaped(rt *ptask.Runtime) *ptask.Task[int] {
	return ptask.Run(rt, func() (int, error) { return 4, nil })
}

// stored passes the future on as a dependence — also an escape.
func stored(rt *ptask.Runtime) {
	t := ptask.Run(rt, func() (int, error) { return 5, nil })
	ptask.WaitAll(rt, t)
}

// everyPath consumes on both branches.
func everyPath(rt *ptask.Runtime, flaky bool) (int, error) {
	t := ptask.Run(rt, func() (int, error) { return 6, nil })
	if flaky {
		t.Cancel()
		return 0, nil
	}
	return t.Result()
}
