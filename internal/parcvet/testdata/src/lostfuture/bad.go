// Package lostfuture holds misuse fixtures: futures created and never
// awaited.
package lostfuture

import "parc751/internal/ptask"

func discarded(rt *ptask.Runtime) {
	ptask.Run(rt, func() (int, error) { return 1, nil }) // want `is discarded`
}

func blanked(rt *ptask.Runtime) {
	_ = ptask.Run(rt, func() (int, error) { return 2, nil }) // want `assigned to _`
}

func earlyReturn(rt *ptask.Runtime, flaky bool) (int, error) {
	t := ptask.Run(rt, func() (int, error) { return 3, nil }) // want `not awaited on every path`
	if flaky {
		return 0, nil
	}
	return t.Result()
}

func multiDiscarded(rt *ptask.Runtime) {
	ptask.RunMulti(rt, 4, func(i int) (int, error) { return i, nil }) // want `is discarded`
}
