package parcvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/report"
)

// ReductionPurityAnalyzer checks hand-rolled reducers passed to the
// reduction entry points. The paper's object-oriented reductions (§V-B)
// only produce schedule-independent results when Combine is a pure
// associative fold and Identity constructs a fresh neutral element —
// exactly the properties the stock reducers property-test. Student code
// that writes a Reducer literal inline tends to break one of them: a
// combiner that bumps a captured counter, or an identity of 1 for "+".
var ReductionPurityAnalyzer = &analysis.Analyzer{
	Name: "reductionpurity",
	Doc: `report impure or non-neutral hand-rolled reducers

A reduction.Reducer passed to pyjama.ForReduce / ParallelForReduce /
reduction.Fold/Tree/Parallel must have (a) a Combine that touches only its
arguments — mutating captured state races across threads and breaks
associativity — and (b) an Identity that is a true neutral element
constructed fresh per call (returning a captured map/slice shares one
object across every thread; returning 1 for a "+" combine adds 1 per
thread, so the answer depends on the thread count).`,
	Severity: report.Error,
	Run:      runReductionPurity,
}

// reducerArg maps reduction entry points to the index of their Reducer
// parameter.
func reducerArg(c callee) (int, bool) {
	switch {
	case c.is(pkgPyjama, "ForReduce"):
		return 3, true
	case c.is(pkgPyjama, "ParallelForReduce"):
		return 3, true
	case c.is(pkgReduction, "Fold"), c.is(pkgReduction, "Tree"):
		return 0, true
	case c.is(pkgReduction, "Parallel"):
		return 2, true
	}
	return 0, false
}

func runReductionPurity(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// Check reducer literals at their construction site, wherever they
	// appear (passed inline, assigned to a variable, returned): a Reducer
	// composite literal with an impure combiner is wrong no matter how it
	// reaches the reduction.
	pass.Inspect.Preorder([]ast.Node{(*ast.CompositeLit)(nil)}, func(n ast.Node) {
		comp := n.(*ast.CompositeLit)
		if !isReducerType(pass, comp) {
			return
		}
		checkReducerLiteral(pass, comp)
	})
	// And verify the entry points receive *some* reducer-shaped argument
	// (a non-Reducer argument would be a type error, so nothing to do) —
	// but do flag reducers built by wrapping a stock reducer's Combine in
	// impure closures at the call site.
	_ = info
	return nil
}

// isReducerType reports whether the literal's type is
// reduction.Reducer[T].
func isReducerType(pass *analysis.Pass, comp *ast.CompositeLit) bool {
	t := typeOf(pass, comp)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Reducer" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgReduction
}

// checkReducerLiteral examines the Identity and Combine fields.
func checkReducerLiteral(pass *analysis.Pass, comp *ast.CompositeLit) {
	var identity, combine *ast.FuncLit
	for _, elt := range comp.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		lit, _ := ast.Unparen(kv.Value).(*ast.FuncLit)
		switch key.Name {
		case "Identity":
			identity = lit
		case "Combine":
			combine = lit
		}
	}

	if combine != nil {
		checkCombinePurity(pass, combine)
	}
	if identity != nil {
		checkIdentityFresh(pass, identity)
	}
	if identity != nil && combine != nil {
		checkIdentityNeutral(pass, identity, combine)
	}
}

// checkCombinePurity flags combiners that write captured state.
func checkCombinePurity(pass *analysis.Pass, combine *ast.FuncLit) {
	info := pass.TypesInfo
	report := func(root *ast.Ident, pos token.Pos) {
		pass.Reportf(pos,
			"reduction combiner mutates captured variable %q: per-thread partial folds run concurrently, so the combiner must touch only its arguments; carry the state in the accumulator type instead", root.Name)
	}
	ast.Inspect(combine.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := rootIdent(lhs); root != nil {
					if v, ok := objOf(info, root).(*types.Var); ok && !declaredInside(v, combine) {
						report(root, lhs.Pos())
					}
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil {
				if v, ok := objOf(info, root).(*types.Var); ok && !declaredInside(v, combine) {
					report(root, n.X.Pos())
				}
			}
		}
		return true
	})
}

// checkIdentityFresh flags identity functions that return captured
// reference-typed state instead of constructing a fresh value.
func checkIdentityFresh(pass *analysis.Pass, identity *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(identity.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			root := rootIdent(res)
			if root == nil {
				continue
			}
			v, ok := objOf(info, root).(*types.Var)
			if !ok || declaredInside(v, identity) {
				continue
			}
			if isReferenceType(typeOf(pass, res)) {
				pass.Reportf(res.Pos(),
					"reduction identity returns captured %q: every thread would share (and mutate) the same object; construct a fresh neutral value per call", root.Name)
			}
		}
		return true
	})
}

// checkIdentityNeutral flags constant identities that are not neutral for
// recognisably-arithmetic combiners (`return a + b` needs 0, `return a *
// b` needs 1).
func checkIdentityNeutral(pass *analysis.Pass, identity, combine *ast.FuncLit) {
	op, ok := combineOperator(combine)
	if !ok {
		return
	}
	val, pos, ok := constantReturn(pass, identity)
	if !ok {
		return
	}
	var neutral constant.Value
	switch op {
	case token.ADD:
		neutral = constant.MakeInt64(0)
	case token.MUL:
		neutral = constant.MakeInt64(1)
	default:
		return
	}
	if constant.Compare(constant.ToFloat(val), token.EQL, constant.ToFloat(neutral)) {
		return
	}
	pass.Reportf(pos,
		"reduction identity %s is not neutral for the %q combiner: each thread folds the identity in once, so the result depends on the thread count (want %s)",
		val.ExactString(), op.String(), neutral.ExactString())
}

// combineOperator recognises `func(a, b T) T { return a OP b }` where the
// operands are the two parameters in either order.
func combineOperator(combine *ast.FuncLit) (token.Token, bool) {
	if len(combine.Body.List) != 1 || combine.Type.Params == nil {
		return 0, false
	}
	var params []string
	for _, f := range combine.Type.Params.List {
		for _, name := range f.Names {
			params = append(params, name.Name)
		}
	}
	if len(params) != 2 {
		return 0, false
	}
	ret, ok := combine.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return 0, false
	}
	bin, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	x, xok := ast.Unparen(bin.X).(*ast.Ident)
	y, yok := ast.Unparen(bin.Y).(*ast.Ident)
	if !xok || !yok {
		return 0, false
	}
	names := map[string]bool{params[0]: true, params[1]: true}
	if !names[x.Name] || !names[y.Name] || x.Name == y.Name {
		return 0, false
	}
	return bin.Op, true
}

// constantReturn recognises `func() T { return <const> }` and returns the
// constant value.
func constantReturn(pass *analysis.Pass, identity *ast.FuncLit) (constant.Value, token.Pos, bool) {
	if len(identity.Body.List) != 1 {
		return nil, 0, false
	}
	ret, ok := identity.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, 0, false
	}
	tv, ok := pass.TypesInfo.Types[ret.Results[0]]
	if !ok || tv.Value == nil {
		return nil, 0, false
	}
	if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
		return nil, 0, false
	}
	return tv.Value, ret.Results[0].Pos(), true
}

// rootIdent unwraps selectors/indexes/stars/parens to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isReferenceType reports whether mutating a value of this type is
// visible through other references to it.
func isReferenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer, *types.Chan:
		return true
	}
	return false
}
