// Package parcvet is a suite of static analyzers that understand this
// repository's own parallel-programming APIs — Parallel Task (ptask),
// Pyjama worksharing, the core runtime, and the GUI event loop — and flag
// the concurrency misuses the reproduced paper's labs teach students to
// avoid (§III, §IV-B, §IV-C): blocking the GUI thread, racing on captured
// variables inside worksharing bodies, dropping futures, divergent
// barriers, impure reductions, and stale loop-index capture.
//
// The analyzers are written against internal/parcvet/analysis, a small
// stdlib-only mirror of golang.org/x/tools/go/analysis, and run through
// cmd/parcvet, a multichecker-style driver. Findings share the course
// report vocabulary (internal/report) with parcaudit.
package parcvet

import (
	"go/ast"
	"go/types"

	"parc751/internal/parcvet/analysis"
)

// Import paths of the APIs the analyzers understand.
const (
	pkgCore      = "parc751/internal/core"
	pkgPtask     = "parc751/internal/ptask"
	pkgPyjama    = "parc751/internal/pyjama"
	pkgEventloop = "parc751/internal/eventloop"
	pkgAndroid   = "parc751/internal/android"
	pkgReduction = "parc751/internal/reduction"
)

// callee identifies what a call expression invokes: the defining package
// path, the receiver's named type ("" for package-level functions), and
// the function name.
type callee struct {
	pkg  string
	recv string
	name string
}

// calleeOf resolves a call through the type info; ok is false for calls
// to builtins, function-typed variables, and anything else that is not a
// declared function or method.
func calleeOf(info *types.Info, call *ast.CallExpr) (callee, bool) {
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation: ptask.Run[int](…).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return callee{}, false
	}
	f, ok := obj.(*types.Func)
	if ok && f.Pkg() != nil {
		c := callee{pkg: f.Pkg().Path(), name: f.Name()}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			c.recv = namedTypeName(sig.Recv().Type())
		}
		return c, true
	}
	return callee{}, false
}

// namedTypeName unwraps pointers and generic instantiation down to the
// receiver type's declared name.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// is reports whether c is the given package-level function.
func (c callee) is(pkg, name string) bool {
	return c.pkg == pkg && c.recv == "" && c.name == name
}

// isMethod reports whether c is the given method.
func (c callee) isMethod(pkg, recv, name string) bool {
	return c.pkg == pkg && c.recv == recv && c.name == name
}

// funcLitArg inspects the stack ending at a *ast.FuncLit: if the literal
// is a direct argument of a call to a declared function/method, it
// returns that callee and the argument index.
func funcLitArg(info *types.Info, stack []ast.Node) (callee, int, bool) {
	if len(stack) < 2 {
		return callee{}, 0, false
	}
	lit := stack[len(stack)-1]
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return callee{}, 0, false
	}
	c, ok := calleeOf(info, call)
	if !ok {
		return callee{}, 0, false
	}
	for i, arg := range call.Args {
		if ast.Unparen(arg) == lit {
			return c, i, true
		}
	}
	return callee{}, 0, false
}

// typeOf returns the static type of e, or nil.
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.Types[e].Type
}

// isAsyncTaskType reports whether the composite literal builds an
// android.AsyncTask (possibly instantiated).
func isAsyncTaskType(pass *analysis.Pass, comp *ast.CompositeLit) bool {
	t := typeOf(pass, comp)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "AsyncTask" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgAndroid
}

// objOf resolves an identifier to its object (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredInside reports whether obj's declaration position lies within
// node's source range — i.e. whether a variable referenced inside a
// closure is local to it (false means captured from an enclosing scope).
func declaredInside(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isWorksharingBody reports whether the callee/arg pair is the body
// closure of a Pyjama worksharing construct or parallel region.
func isWorksharingBody(c callee, arg int) bool {
	switch {
	case c.isMethod(pkgPyjama, "TC", "For") && arg == 2,
		c.isMethod(pkgPyjama, "TC", "ForNoWait") && arg == 2,
		c.isMethod(pkgPyjama, "TC", "ForChunked") && arg == 2,
		c.isMethod(pkgPyjama, "TC", "For2D") && arg == 3,
		c.isMethod(pkgPyjama, "TC", "For2DNoWait") && arg == 3,
		c.isMethod(pkgPyjama, "TC", "ForRange") && arg == 3,
		c.is(pkgPyjama, "ParallelFor") && arg == 3,
		c.is(pkgPyjama, "ForReduce") && arg == 4,
		c.is(pkgPyjama, "ParallelForReduce") && arg == 4:
		return true
	}
	return false
}

// isRegionBody reports whether the callee/arg pair is a parallel region
// body (every team member runs it).
func isRegionBody(c callee, arg int) bool {
	switch {
	case c.is(pkgPyjama, "Parallel") && arg == 1,
		c.is(pkgPyjama, "ParallelWithStats") && arg == 1,
		c.is(pkgPyjama, "Async") && arg == 2:
		return true
	}
	return false
}

// isTaskBody reports whether the callee/arg pair is a closure that a task
// or pool runs asynchronously.
func isTaskBody(c callee, arg int) bool {
	switch {
	case c.is(pkgPtask, "Run") && arg == 1,
		c.is(pkgPtask, "RunAfter") && arg == 2,
		c.is(pkgPtask, "RunMulti") && arg == 2,
		c.is(pkgPtask, "Invoke") && arg == 1,
		c.is(pkgPtask, "Then") && arg == 1,
		c.isMethod(pkgCore, "Pool", "Submit") && arg == 0,
		c.isMethod(pkgAndroid, "SerialExecutor", "Submit") && arg == 0:
		return true
	}
	return false
}
