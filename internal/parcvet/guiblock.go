package parcvet

import (
	"fmt"
	"go/ast"
	"go/token"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/report"
)

// GUIBlockAnalyzer flags blocking calls reachable from GUI-thread
// callbacks — the paper's concurrency-versus-parallelism lesson (§IV-B):
// work must stay off the event-dispatch thread, and completion handlers
// hop back onto it. A handler that calls Future.Get, Pool.Quiesce, a
// blocking pyjama.Parallel region, or time.Sleep freezes every pending
// repaint behind it.
var GUIBlockAnalyzer = &analysis.Analyzer{
	Name: "guiblock",
	Doc: `report blocking calls inside GUI event-dispatch callbacks

A closure that runs on the event loop (eventloop.Loop.InvokeLater,
pyjama.OnGUI, ptask Notify callbacks, android.Handler.Post, AsyncTask
OnPostExecute/OnProgressUpdate) must not wait: calls that block — Future.Get,
Task.Result, Pool.Quiesce, WaitAll, a synchronous pyjama.Parallel region,
receiving from Done(), time.Sleep — freeze the UI. Offload with ptask or
pyjama.Async and deliver results via Notify/OnGUI.`,
	Severity: report.Error,
	Run:      runGUIBlock,
}

// asyncTaskCallbacks are the android.AsyncTask fields delivered on the
// main looper.
var asyncTaskCallbacks = map[string]bool{
	"OnPreExecute":     true,
	"OnProgressUpdate": true,
	"OnPostExecute":    true,
	"OnCancelled":      true,
}

func runGUIBlock(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// 1. Collect every function literal that is a GUI-thread callback,
	// with a description of how it gets onto the dispatch thread.
	handlers := map[*ast.FuncLit]string{}
	pass.Inspect.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		lit := n.(*ast.FuncLit)
		if c, arg, ok := funcLitArg(info, stack); ok {
			if desc, ok := guiHandlerContext(c, arg); ok {
				handlers[lit] = desc
			}
		}
		// android.AsyncTask callback fields, assigned or set in a
		// composite literal.
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.KeyValueExpr:
				if key, ok := parent.Key.(*ast.Ident); ok && asyncTaskCallbacks[key.Name] && len(stack) >= 3 {
					if comp, ok := stack[len(stack)-3].(*ast.CompositeLit); ok && isAsyncTaskType(pass, comp) {
						handlers[lit] = "android.AsyncTask." + key.Name + " callback (runs on the main looper)"
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range parent.Rhs {
					if ast.Unparen(rhs) != lit || i >= len(parent.Lhs) {
						continue
					}
					if sel, ok := parent.Lhs[i].(*ast.SelectorExpr); ok && asyncTaskCallbacks[sel.Sel.Name] &&
						namedTypeName(typeOf(pass, sel.X)) == "AsyncTask" {
						handlers[lit] = "android.AsyncTask." + sel.Sel.Name + " callback (runs on the main looper)"
					}
				}
			}
		}
		return true
	})
	if len(handlers) == 0 {
		return nil
	}

	// 2. Function literals launched via `go` run off the handler thread;
	// immediately-invoked literals run on it.
	goLaunched := map[*ast.FuncLit]bool{}
	pass.Inspect.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		if lit, ok := ast.Unparen(n.(*ast.GoStmt).Call.Fun).(*ast.FuncLit); ok {
			goLaunched[lit] = true
		}
	})

	// 3. Scan each handler body for blocking calls. Nested literals are
	// only followed when they still execute on the dispatch thread:
	// goroutine launches and closures handed to the task/worksharing APIs
	// run elsewhere (and are classified as their own contexts if needed).
	for lit, desc := range handlers {
		scanHandlerBody(pass, lit, desc, goLaunched)
	}
	return nil
}

func scanHandlerBody(pass *analysis.Pass, handler *ast.FuncLit, desc string, goLaunched map[*ast.FuncLit]bool) {
	info := pass.TypesInfo
	ast.Inspect(handler.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == handler {
				return true
			}
			// Stays on the dispatch thread only if it is neither a
			// goroutine body nor a closure handed to an async API.
			if goLaunched[n] {
				return false
			}
			return true
		case *ast.GoStmt:
			// Arguments are evaluated on the handler thread, but the
			// launched body is not; the FuncLit case above skips it.
			return true
		case *ast.UnaryExpr:
			// <-t.Done() inside a handler blocks until completion.
			if n.Op == token.ARROW {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if c, ok := calleeOf(info, call); ok && c.name == "Done" &&
						(c.isMethod(pkgCore, "Future", "Done") || c.isMethod(pkgPtask, "Task", "Done") || c.isMethod(pkgPtask, "MultiTask", "Done")) {
						pass.Reportf(n.Pos(), "receiving from %s blocks the GUI dispatch thread inside %s; use Notify to deliver the result back to the loop", c, desc)
					}
				}
			}
			return true
		case *ast.CallExpr:
			c, ok := calleeOf(info, n)
			if !ok {
				return true
			}
			// A closure passed to a task/worksharing construct runs
			// off-thread; do not descend into it from here.
			if why, blocking := blockingCall(c); blocking {
				pass.Reportf(n.Pos(), "call to %s %s inside %s; hand the work to ptask or pyjama.Async and return, delivering results via Notify/OnGUI", c, why, desc)
			}
			for i, arg := range n.Args {
				if inner, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					if isTaskBody(c, i) || isWorksharingBody(c, i) || isRegionBody(c, i) {
						goLaunched[inner] = true // reuse the skip set
					}
				}
			}
			return true
		}
		return true
	})
}

// guiHandlerContext classifies closures that the runtime delivers on an
// event-dispatch thread.
func guiHandlerContext(c callee, arg int) (string, bool) {
	switch {
	case c.isMethod(pkgEventloop, "Loop", "InvokeLater") && arg == 0:
		return "an eventloop.InvokeLater handler", true
	case c.isMethod(pkgEventloop, "Loop", "InvokeAndWait") && arg == 0:
		return "an eventloop.InvokeAndWait handler", true
	case c.is(pkgPyjama, "OnGUI") && arg == 1:
		return "a pyjama.OnGUI callback", true
	case c.is(pkgPyjama, "OnGUISync") && arg == 1:
		return "a pyjama.OnGUISync callback", true
	case c.is(pkgPyjama, "Async") && arg == 3:
		return "a pyjama.Async completion callback (delivered on the event loop)", true
	case c.isMethod(pkgPtask, "Task", "Notify") && arg == 0,
		c.isMethod(pkgPtask, "MultiTask", "Notify") && arg == 0,
		c.isMethod(pkgPtask, "MultiTask", "NotifyEach") && arg == 0,
		c.isMethod(pkgPtask, "Progress", "Notify") && arg == 0:
		return "a ptask Notify callback (delivered on the event loop)", true
	case c.isMethod(pkgAndroid, "Handler", "Post") && arg == 0,
		c.isMethod(pkgAndroid, "Handler", "PostAndWait") && arg == 0:
		return "an android.Handler callback (runs on the main looper)", true
	}
	return "", false
}

// blockingCall classifies calls that park the calling goroutine until
// other work completes.
func blockingCall(c callee) (string, bool) {
	switch {
	case c.isMethod(pkgCore, "Future", "Get"):
		return "waits for the future", true
	case c.isMethod(pkgCore, "Pool", "Quiesce"):
		return "waits for the whole pool to drain", true
	case c.isMethod(pkgCore, "Pool", "Help"):
		return "donates the calling thread to the pool until done", true
	case c.isMethod(pkgPtask, "Task", "Result"):
		return "waits for the task", true
	case c.isMethod(pkgPtask, "MultiTask", "Results"):
		return "waits for every subtask", true
	case c.is(pkgPtask, "WaitAll"):
		return "waits for all dependences", true
	case c.is(pkgPyjama, "Parallel"), c.is(pkgPyjama, "ParallelWithStats"),
		c.is(pkgPyjama, "ParallelFor"), c.is(pkgPyjama, "ParallelForReduce"):
		return "runs a synchronous parallel region to completion", true
	case c.isMethod(pkgAndroid, "AsyncTask", "Get"):
		return "waits for the AsyncTask", true
	case c.isMethod(pkgAndroid, "SerialExecutor", "Wait"):
		return "waits for the executor to drain", true
	case c.isMethod(pkgEventloop, "Loop", "Probe"):
		return "synchronously measures the loop for the whole probe duration", true
	case c.pkg == "time" && c.recv == "" && c.name == "Sleep":
		return "sleeps", true
	}
	return "", false
}

// String renders the callee for diagnostics.
func (c callee) String() string {
	short := c.pkg
	if i := lastSlash(c.pkg); i >= 0 {
		short = c.pkg[i+1:]
	}
	if c.recv != "" {
		return fmt.Sprintf("(%s.%s).%s", short, c.recv, c.name)
	}
	return fmt.Sprintf("%s.%s", short, c.name)
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
