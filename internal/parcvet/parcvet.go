package parcvet

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/parcvet/loader"
	"parc751/internal/report"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		GUIBlockAnalyzer,
		SharedWriteAnalyzer,
		LostFutureAnalyzer,
		BarrierMismatchAnalyzer,
		ReductionPurityAnalyzer,
		LoopIndexCaptureAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer selection; an empty
// selection means the full suite.
func ByName(names string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return Analyzers(), nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the packages matched by patterns under the module rooted at
// moduleRoot and applies the analyzers (nil means all), returning the
// surviving findings sorted by position.
func Run(moduleRoot string, patterns []string, analyzers []*analysis.Analyzer) ([]report.Finding, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []report.Finding
	for _, pkg := range pkgs {
		out = append(out, AnalyzePackage(l, pkg, analyzers)...)
	}
	return out, nil
}

// AnalyzeSource typechecks an in-memory package (files: name → source)
// against the module at moduleRoot and analyzes it — the entry point the
// golden tests and the A7 experiment use for canned student-style code.
func AnalyzeSource(moduleRoot, importPath string, files map[string]string, analyzers []*analysis.Analyzer) ([]report.Finding, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkg, err := l.CheckSource(importPath, files)
	if err != nil {
		return nil, err
	}
	return AnalyzePackage(l, pkg, analyzers), nil
}

// AnalyzePackage runs the analyzers over one loaded package, applies
// //parcvet:ignore suppressions, and converts the diagnostics into the
// shared course-report vocabulary.
func AnalyzePackage(l *loader.Loader, pkg *loader.Package, analyzers []*analysis.Analyzer) []report.Finding {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	fset := l.Fset()
	relPos := func(pos token.Pos) string {
		posn := fset.Position(pos)
		name := posn.Filename
		if rel, err := filepath.Rel(l.ModuleRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		return fmt.Sprintf("%s:%d:%d", name, posn.Line, posn.Column)
	}
	supp := collectSuppressions(fset, pkg.Files, relPos)

	type located struct {
		posn token.Position
		f    report.Finding
	}
	var found []located
	insp := analysis.NewInspector(pkg.Files)
	for _, an := range analyzers {
		an := an
		pass := &analysis.Pass{
			Analyzer:  an,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Inspect:   insp,
			Report: func(d analysis.Diagnostic) {
				posn := fset.Position(d.Pos)
				if supp.matches(an.Name, posn) {
					return
				}
				sev := an.Severity
				if d.HasSeverity {
					sev = d.Severity
				}
				detail := d.Message
				for _, fix := range d.SuggestedFixes {
					detail += "; fix: " + fix.Message
				}
				found = append(found, located{posn, report.Finding{
					Tool: "parcvet", Rule: an.Name,
					Pos: relPos(d.Pos), Severity: sev, Detail: detail,
				}})
			},
		}
		// An analyzer error is reported in-band rather than aborting the
		// whole run: the other analyzers' findings are still good.
		if err := an.Run(pass); err != nil {
			found = append(found, located{token.Position{}, report.Finding{
				Tool: "parcvet", Rule: an.Name, Pos: pkg.Path,
				Severity: report.Error, Detail: fmt.Sprintf("analyzer failed: %v", err),
			}})
		}
	}
	sort.SliceStable(found, func(i, j int) bool {
		a, b := found[i].posn, found[j].posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	out := append([]report.Finding(nil), supp.malformed...)
	for _, lf := range found {
		out = append(out, lf.f)
	}
	return out
}
