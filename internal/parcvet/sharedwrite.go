package parcvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"parc751/internal/parcvet/analysis"
	"parc751/internal/report"
)

// SharedWriteAnalyzer flags unsynchronised writes to captured variables
// inside closures that the runtime executes concurrently — the classic
// race the paper's Java-memory-model lab (§IV-C) teaches. A worksharing
// body runs on every team member at once; `sum += x` on a captured `sum`
// is a data race unless the write is serialised (tc.Critical, Single,
// Master, Ordered, a held sync.Mutex) or restructured as a reduction /
// per-thread slot.
var SharedWriteAnalyzer = &analysis.Analyzer{
	Name: "sharedwrite",
	Doc: `report racy writes to captured variables in parallel closure bodies

Closures passed to pyjama worksharing constructs (tc.For, ParallelFor,
ForReduce bodies), parallel region bodies, and ptask/pool task bodies run
concurrently. Writing a variable captured from outside the concurrency
boundary races unless the write is serialised. The boundary is
per-construct: a tc.For body closure is created by each team member, so
anything declared in the member's own frame (the region body, a helper
taking the tc) is private; a pyjama.Parallel region body or ParallelFor
body is one closure shared by the whole team, so only its own locals are
private; a task closure created inside a loop owns that iteration's
locals. Recognised-safe patterns: element writes indexed by the loop
variable, tc.ThreadNum(), or a per-instance local (distinct slots); writes
inside tc.Critical/Single/SingleNoWait/Master/Ordered closures; writes
preceded by a sync.Mutex Lock in the same statement sequence; and closures
delivered on the GUI thread (serialised by the single looper). Captured
maps are flagged unconditionally — concurrent map writes are undefined
behaviour even on distinct keys. Restructure with pyjama.ForReduce,
ThreadPrivate, or tc.Critical.`,
	Severity: report.Error,
	Run:      runSharedWrite,
}

func runSharedWrite(pass *analysis.Pass) error {
	info := pass.TypesInfo
	pass.Inspect.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		lit := n.(*ast.FuncLit)
		c, arg, ok := funcLitArg(info, stack)
		if !ok {
			return true
		}
		// localNodes are the regions whose declarations do not race with
		// other executions of this closure — the concurrency boundary.
		localNodes := []ast.Node{lit}
		var kind string
		switch {
		case isTCWorksharingBody(c, arg) || c.isMethod(pkgPyjama, "TC", "Sections"):
			// SPMD: each member executes the enclosing region body (or a
			// helper that received the tc) in its own frame and builds its
			// own closure instance there. Locals of that frame are
			// per-member; only captures from beyond it are shared.
			if kind = "worksharing body " + c.String(); c.recv == "TC" && c.name == "Sections" {
				kind = "sections body"
			}
			if fn := enclosingFunction(stack[:len(stack)-1]); fn != nil {
				localNodes = append(localNodes, fn)
			}
		case isWorksharingBody(c, arg):
			// ParallelFor / ForReduce-style package-level constructs: one
			// closure shared by the whole team.
			kind = "worksharing body " + c.String()
		case isRegionBody(c, arg):
			kind = "parallel region body " + c.String()
		case isTaskBody(c, arg):
			kind = "task body " + c.String()
			// A task closure built inside a loop captures that iteration's
			// locals — fresh per instance, so not shared between tasks.
			localNodes = append(localNodes, enclosingLoops(stack[:len(stack)-1])...)
		default:
			return true
		}
		checkConcurrentBody(pass, lit, kind, localNodes)
		return true
	})
	return nil
}

// isTCWorksharingBody reports whether the callee/arg pair is the body of a
// TC-method worksharing construct (closure built per member, SPMD-style),
// as opposed to the package-level constructs that share one closure.
func isTCWorksharingBody(c callee, arg int) bool {
	return c.recv == "TC" && isWorksharingBody(c, arg)
}

// enclosingFunction returns the innermost function declaration or literal
// on the stack, or nil.
func enclosingFunction(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// enclosingLoops returns the for/range statements on the stack inside the
// innermost enclosing function.
func enclosingLoops(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return out
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, stack[i])
		}
	}
	return out
}

// checkConcurrentBody scans one concurrently-executed closure for
// captured-variable writes.
func checkConcurrentBody(pass *analysis.Pass, body *ast.FuncLit, kind string, localNodes []ast.Node) {
	info := pass.TypesInfo

	// The loop-index parameters of the body (i in func(i int), (i, j) in
	// For2D, (lo, hi) in ForChunked): indexing by them addresses distinct
	// elements per iteration.
	indexParams := map[types.Object]bool{}
	for _, field := range body.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
					indexParams[obj] = true
				}
			}
		}
	}

	// Walk the body carrying the "serialised" state: once we are inside a
	// closure passed to Critical/Single/Master/Ordered or delivered on the
	// single GUI thread, writes are safe.
	var walk func(n ast.Node, serialised bool)
	walk = func(root ast.Node, serialised bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c, ok := calleeOf(info, n)
				if !ok || !containsFuncLitArg(n) {
					return true
				}
				// Walk the arguments by hand so each closure gets the
				// right serialisation state, then stop the default
				// descent (it would re-walk them with the wrong state).
				walk(n.Fun, serialised)
				for i, a := range n.Args {
					inner, isLit := ast.Unparen(a).(*ast.FuncLit)
					if !isLit {
						walk(a, serialised)
						continue
					}
					switch {
					case isSerialisingBody(c, i):
						walk(inner.Body, true)
					case isGUIDelivered(c, i):
						// Everything the loop delivers runs on the one
						// dispatch thread, in order.
						walk(inner.Body, true)
					case isWorksharingBody(c, i) || isRegionBody(c, i) || isTaskBody(c, i) || c.isMethod(pkgPyjama, "TC", "Sections"):
						// A nested parallel construct: runSharedWrite
						// scans it as its own context.
					default:
						walk(inner.Body, serialised)
					}
				}
				return false
			case *ast.AssignStmt:
				if !serialised {
					for _, lhs := range n.Lhs {
						checkWrite(pass, body, lhs, indexParams, kind, localNodes)
					}
				}
				return true
			case *ast.IncDecStmt:
				if !serialised {
					checkWrite(pass, body, n.X, indexParams, kind, localNodes)
				}
				return true
			}
			return true
		})
	}
	walk(body.Body, false)
}

// containsFuncLitArg reports whether any argument of call is a function
// literal (those are walked explicitly with the right serialisation
// state).
func containsFuncLitArg(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// isSerialisingBody reports whether the callee/arg pair executes the
// closure with mutual exclusion (or exactly-once) semantics.
func isSerialisingBody(c callee, arg int) bool {
	switch {
	case c.isMethod(pkgPyjama, "TC", "Critical") && arg == 1,
		c.isMethod(pkgPyjama, "TC", "Single") && arg == 0,
		c.isMethod(pkgPyjama, "TC", "SingleNoWait") && arg == 0,
		c.isMethod(pkgPyjama, "TC", "Master") && arg == 0,
		c.isMethod(pkgPyjama, "TC", "Ordered") && arg == 1:
		return true
	}
	return false
}

// isGUIDelivered reports whether the callee/arg pair is a closure the
// runtime delivers on the single event-dispatch thread.
func isGUIDelivered(c callee, arg int) bool {
	_, ok := guiHandlerContext(c, arg)
	return ok
}

// checkWrite analyses one assignment target inside a concurrent body.
func checkWrite(pass *analysis.Pass, body *ast.FuncLit, lhs ast.Expr, indexParams map[types.Object]bool, kind string, localNodes []ast.Node) {
	info := pass.TypesInfo

	// Unwrap the access path down to the root identifier, remembering the
	// index expressions and whether any step goes through a map.
	var indexes []ast.Expr
	mapWrite := false
	expr := lhs
unwrap:
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			if t := typeOf(pass, e.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					mapWrite = true
				}
			}
			indexes = append(indexes, e.Index)
			expr = e.X
		default:
			break unwrap
		}
	}
	root, ok := expr.(*ast.Ident)
	if !ok || root.Name == "_" {
		return
	}
	obj := objOf(info, root)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if declaredInsideAny(v, localNodes) {
		return // private to this execution of the concurrent body
	}
	// Pointer-typed roots that are per-iteration would already be local;
	// a captured pointer dereference is still a shared write.

	if underMutexLock(info, body, lhs.Pos()) {
		return // the statement sequence holds a sync.Mutex around the write
	}

	if mapWrite {
		pass.Reportf(lhs.Pos(),
			"concurrent write to captured map %q in %s: map writes race even on distinct keys; merge per-thread maps with pyjama.ForReduce or guard with tc.Critical", root.Name, kind)
		return
	}
	// Slice/array element writes addressed by the loop index or the
	// thread id hit distinct slots — the idiomatic safe output pattern.
	for _, idx := range indexes {
		if indexIsDistinct(pass, idx, indexParams, localNodes) {
			return
		}
	}
	if len(indexes) > 0 {
		pass.Reportf(lhs.Pos(),
			"write to element of captured %q in %s with an index that is not derived from the loop variable or tc.ThreadNum(): concurrent iterations may hit the same slot; index by the loop variable, or reduce with pyjama.ForReduce", root.Name, kind)
		return
	}
	pass.Reportf(lhs.Pos(),
		"write to captured variable %q in %s: every concurrent execution races on it; use pyjama.ForReduce / ThreadPrivate per-thread slots, or serialise with tc.Critical", root.Name, kind)
}

// declaredInsideAny reports whether obj is declared inside any of the
// nodes.
func declaredInsideAny(obj types.Object, nodes []ast.Node) bool {
	for _, n := range nodes {
		if declaredInside(obj, n) {
			return true
		}
	}
	return false
}

// underMutexLock reports whether, in some statement sequence inside body
// enclosing pos, the write at pos is preceded by a bare `m.Lock()` on a
// sync.Mutex/RWMutex with no later bare `Unlock()` before it. The scan is
// sibling-level only (it does not look inside compound statements for
// lock operations), which keeps it a cheap, predictable heuristic: the
// canonical lock…write…unlock sequence is recognised, contrived shapes
// fall back to reporting.
func underMutexLock(info *types.Info, body *ast.FuncLit, pos token.Pos) bool {
	held := false
	ast.Inspect(body.Body, func(n ast.Node) bool {
		if n == nil || held {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		// Only sequences that contain pos matter.
		locked := false
		for _, s := range list {
			if s.Pos() > pos {
				break
			}
			if s.End() > pos {
				// s is the statement containing the write.
				if locked {
					held = true
				}
				break
			}
			switch mutexOp(info, s) {
			case "Lock":
				locked = true
			case "Unlock":
				locked = false
			}
		}
		return !held
	})
	return held
}

// mutexOp classifies a statement as a bare sync mutex Lock/Unlock call.
func mutexOp(info *types.Info, s ast.Stmt) string {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return ""
	}
	c, ok := calleeOf(info, call)
	if !ok || c.pkg != "sync" || (c.recv != "Mutex" && c.recv != "RWMutex") {
		return ""
	}
	switch c.name {
	case "Lock":
		return "Lock"
	case "Unlock":
		return "Unlock"
	}
	return ""
}

// indexIsDistinct reports whether the index expression plausibly
// addresses a distinct element per concurrent execution: it mentions a
// loop-index parameter, a tc.ThreadNum() call, or a variable private to
// this execution (which the lint assumes was derived from one — the
// deliberate false-negative documented in DESIGN.md §9).
func indexIsDistinct(pass *analysis.Pass, idx ast.Expr, indexParams map[types.Object]bool, localNodes []ast.Node) bool {
	info := pass.TypesInfo
	distinct := false
	ast.Inspect(idx, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := objOf(info, n); obj != nil {
				if indexParams[obj] || declaredInsideAny(obj, localNodes) {
					distinct = true
				}
			}
		case *ast.CallExpr:
			if c, ok := calleeOf(info, n); ok && c.isMethod(pkgPyjama, "TC", "ThreadNum") {
				distinct = true
			}
		}
		return !distinct
	})
	return distinct
}
