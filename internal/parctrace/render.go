package parctrace

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// Rendering caps: the viewer is a debugger, not a database. Beyond these
// the page notes the truncation; the full window is always in the
// embedded JSON and the dump file.
const (
	maxTimelineEvents = 4000
	maxDAGNodes       = 300
)

// span is one run→complete interval on a worker row.
type span struct {
	task     uint64
	startNs  int64
	endNs    int64
	complete bool
}

// timelineModel groups the event window into per-worker rows.
type timelineModel struct {
	workers []int32 // sorted distinct worker ids present
	spans   map[int32][]span
	marks   map[int32][]DumpEvent // submit/steal/park/wake ticks
	tMin    int64
	tMax    int64
}

func buildTimeline(d *Dump) *timelineModel {
	m := &timelineModel{
		spans: map[int32][]span{},
		marks: map[int32][]DumpEvent{},
		tMin:  1<<63 - 1,
	}
	open := map[uint64]*span{} // task -> currently running span
	seen := map[int32]bool{}
	evs := d.Events
	if len(evs) > maxTimelineEvents {
		evs = evs[len(evs)-maxTimelineEvents:]
	}
	for _, ev := range evs {
		if ev.TNs < m.tMin {
			m.tMin = ev.TNs
		}
		if ev.TNs > m.tMax {
			m.tMax = ev.TNs
		}
		seen[ev.Worker] = true
		switch ev.Kind {
		case "run":
			s := span{task: ev.Task, startNs: ev.TNs, endNs: ev.TNs}
			m.spans[ev.Worker] = append(m.spans[ev.Worker], s)
			if ev.Task != 0 {
				open[ev.Task] = &m.spans[ev.Worker][len(m.spans[ev.Worker])-1]
			}
		case "complete":
			if s := open[ev.Task]; s != nil {
				s.endNs = ev.TNs
				s.complete = true
				delete(open, ev.Task)
			}
		case "submit", "steal", "park", "wake":
			m.marks[ev.Worker] = append(m.marks[ev.Worker], ev)
		}
	}
	for w := range seen {
		m.workers = append(m.workers, w)
	}
	sort.Slice(m.workers, func(i, j int) bool { return m.workers[i] < m.workers[j] })
	if m.tMax <= m.tMin {
		m.tMax = m.tMin + 1
	}
	return m
}

// dagModel is the dependence graph laid out in longest-path layers.
type dagModel struct {
	Nodes     []dagNode `json:"nodes"`
	Edges     []dagEdge `json:"edges"`
	Truncated bool      `json:"truncated,omitempty"`
}

type dagNode struct {
	ID    uint64 `json:"id"`
	Layer int    `json:"layer"`
	Col   int    `json:"col"`
	Kind  string `json:"kind"` // "task" or "region"
}

type dagEdge struct {
	From uint64 `json:"from"` // dependence (runs first)
	To   uint64 `json:"to"`   // dependent
}

func buildDAG(d *Dump) *dagModel {
	g := &dagModel{}
	nodeKind := map[uint64]string{}
	order := []uint64{}
	note := func(id uint64, kind string) {
		if id == 0 {
			return
		}
		if _, ok := nodeKind[id]; !ok {
			if len(nodeKind) >= maxDAGNodes {
				g.Truncated = true
				return
			}
			nodeKind[id] = kind
			order = append(order, id)
		}
	}
	deps := map[uint64][]uint64{} // dependent -> dependences
	for _, ev := range d.Events {
		switch ev.Kind {
		case "submit", "run":
			note(ev.Task, "task")
		case "region_start":
			note(ev.Task, "region")
		case "depend":
			note(ev.Task, "task")
			note(ev.Aux, "task")
			if _, ok := nodeKind[ev.Task]; ok {
				if _, ok := nodeKind[ev.Aux]; ok {
					deps[ev.Task] = append(deps[ev.Task], ev.Aux)
					g.Edges = append(g.Edges, dagEdge{From: ev.Aux, To: ev.Task})
				}
			}
		}
	}
	// Longest-path layering: a node sits one layer below its deepest
	// dependence. The visit is memoized and cycle-guarded (a malformed
	// dump could claim a cycle; the guard breaks it at depth 0).
	layer := map[uint64]int{}
	visiting := map[uint64]bool{}
	var depth func(id uint64) int
	depth = func(id uint64) int {
		if l, ok := layer[id]; ok {
			return l
		}
		if visiting[id] {
			return 0
		}
		visiting[id] = true
		l := 0
		for _, dep := range deps[id] {
			if dl := depth(dep) + 1; dl > l {
				l = dl
			}
		}
		visiting[id] = false
		layer[id] = l
		return l
	}
	cols := map[int]int{}
	for _, id := range order {
		l := depth(id)
		g.Nodes = append(g.Nodes, dagNode{ID: id, Layer: l, Col: cols[l], Kind: nodeKind[id]})
		cols[l]++
	}
	return g
}

// RenderHTML writes the self-contained viewer: summary, per-worker
// timeline SVG, dependence DAG SVG, and the trace JSON embedded in a
// <script type="application/json"> block — stdlib only, no JS
// dependencies, safe to save and open offline.
func RenderHTML(w io.Writer, d *Dump) error {
	tl := buildTimeline(d)
	dag := buildDAG(d)
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>parctrace: %s</title>\n", html.EscapeString(d.Name))
	b.WriteString(`<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
table { border-collapse: collapse; } td, th { border: 1px solid #ccc; padding: 3px 10px; text-align: right; }
th { background: #f2f2f2; }
.lane-label { font: 11px monospace; }
svg { border: 1px solid #ddd; background: #fcfcfc; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>parctrace — %s</h1>\n", html.EscapeString(d.Name))
	fmt.Fprintf(&b, "<p>schema %s · seed %d · %d workers · %d events recorded (%d lost, %d sampled out)</p>\n",
		html.EscapeString(d.Schema), d.Seed, d.Workers, d.Recorded, d.Lost, d.SampledOut)

	b.WriteString("<h2>Event counts</h2>\n<table><tr>")
	keys := make([]string, 0, len(d.Counts))
	for k := range d.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(k))
	}
	b.WriteString("</tr><tr>")
	for _, k := range keys {
		fmt.Fprintf(&b, "<td>%d</td>", d.Counts[k])
	}
	b.WriteString("</tr></table>\n")

	if len(d.Faults) > 0 {
		fmt.Fprintf(&b, "<h2>Injected faults (%d)</h2>\n<p><code>%s</code></p>\n",
			len(d.Faults), html.EscapeString(strings.Join(d.Faults, " ")))
	}

	renderTimelineSVG(&b, tl)
	renderDAGSVG(&b, dag)

	// The raw window rides along for tooling; encoding/json escapes '<'
	// by default, so the payload cannot break out of the script block.
	b.WriteString("<h2>Trace data</h2>\n<script type=\"application/json\" id=\"trace-data\">\n")
	payload, err := json.Marshal(struct {
		Dump *Dump     `json:"dump"`
		DAG  *dagModel `json:"dag"`
	}{d, dag})
	if err != nil {
		return err
	}
	b.Write(payload)
	b.WriteString("\n</script>\n<p>Embedded JSON: the full recorded window plus the DAG layout.</p>\n")
	b.WriteString("</body>\n</html>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

func renderTimelineSVG(b *strings.Builder, tl *timelineModel) {
	const (
		width  = 960
		rowH   = 26
		labelW = 70
		padTop = 8
		chartW = width - labelW - 16
	)
	b.WriteString("<h2>Per-worker timeline</h2>\n")
	if len(tl.workers) == 0 {
		b.WriteString("<p>No events recorded yet.</p>\n")
		return
	}
	height := padTop*2 + rowH*len(tl.workers)
	scale := func(t int64) float64 {
		return float64(labelW) + float64(t-tl.tMin)/float64(tl.tMax-tl.tMin)*float64(chartW)
	}
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" class=\"timeline\">\n", width, height)
	for i, wid := range tl.workers {
		y := padTop + i*rowH
		name := fmt.Sprintf("w%d", wid)
		if wid < 0 {
			name = "ext"
		}
		fmt.Fprintf(b, "<text x=\"4\" y=\"%d\" class=\"lane-label\">%s</text>\n", y+rowH/2+4, name)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n",
			labelW, y+rowH/2, width-8, y+rowH/2)
		for _, s := range tl.spans[wid] {
			x0, x1 := scale(s.startNs), scale(s.endNs)
			if x1-x0 < 1.5 {
				x1 = x0 + 1.5
			}
			fill := "#4a90d9"
			if !s.complete {
				fill = "#d94a4a" // run with no matching complete in the window
			}
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" rx=\"2\"><title>task %d: %.1fµs</title></rect>\n",
				x0, y+5, x1-x0, rowH-10, fill, s.task, float64(s.endNs-s.startNs)/1e3)
		}
		for _, ev := range tl.marks[wid] {
			x := scale(ev.TNs)
			color := map[string]string{
				"submit": "#666", "steal": "#e08a00", "park": "#bbb", "wake": "#3aa35c",
			}[ev.Kind]
			fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"%s\"><title>%s task %d</title></line>\n",
				x, y+3, x, y+rowH-3, color, ev.Kind, ev.Task)
		}
	}
	b.WriteString("</svg>\n")
	b.WriteString("<p>Blue bars: run→complete spans. Orange ticks: steals (after the claim landed). Grey: submits, green: wakes, light grey: parks.</p>\n")
}

func renderDAGSVG(b *strings.Builder, g *dagModel) {
	b.WriteString("<h2>Task dependence DAG</h2>\n")
	if len(g.Nodes) == 0 {
		b.WriteString("<p>No task nodes in the recorded window.</p>\n")
		return
	}
	const (
		nodeR   = 7
		colStep = 34
		rowStep = 56
		padX    = 30
		padY    = 30
	)
	maxLayer, maxCol := 0, 0
	pos := map[uint64][2]int{}
	for _, n := range g.Nodes {
		x := padX + n.Col*colStep
		y := padY + n.Layer*rowStep
		pos[n.ID] = [2]int{x, y}
		if n.Layer > maxLayer {
			maxLayer = n.Layer
		}
		if n.Col > maxCol {
			maxCol = n.Col
		}
	}
	width := padX*2 + maxCol*colStep + 40
	if width < 300 {
		width = 300
	}
	height := padY*2 + maxLayer*rowStep + 20
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" class=\"dag\">\n", width, height)
	for _, e := range g.Edges {
		p, q := pos[e.From], pos[e.To]
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#b0c4de\"/>\n",
			p[0], p[1], q[0], q[1])
	}
	for _, n := range g.Nodes {
		p := pos[n.ID]
		fill := "#4a90d9"
		if n.Kind == "region" {
			fill = "#9b59b6"
		}
		fmt.Fprintf(b, "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"%s\"><title>task %d (layer %d)</title></circle>\n",
			p[0], p[1], nodeR, fill, n.ID, n.Layer)
	}
	b.WriteString("</svg>\n")
	note := fmt.Sprintf("<p>%d nodes, %d dependence edges; layers are longest-path depth (a node runs below everything it waits on).", len(g.Nodes), len(g.Edges))
	if g.Truncated {
		note += fmt.Sprintf(" Truncated to the first %d nodes — the embedded JSON holds the full window.", maxDAGNodes)
	}
	b.WriteString(note + "</p>\n")
}

// RenderASCII renders the per-worker timeline as fixed-width text: one
// row per worker, time bucketed into width columns, '#' where the worker
// was executing a task, 'S' where a steal landed, '.' idle — the
// screenshot-free rendering the CLI and README use.
func RenderASCII(d *Dump, width int) string {
	if width < 16 {
		width = 64
	}
	tl := buildTimeline(d)
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d workers, %d events (%d lost, %d sampled out), window %.2fms\n",
		d.Name, d.Workers, d.Recorded, d.Lost, d.SampledOut,
		float64(tl.tMax-tl.tMin)/1e6)
	if len(tl.workers) == 0 {
		b.WriteString("(no events)\n")
		return b.String()
	}
	bucket := func(t int64) int {
		i := int(float64(t-tl.tMin) / float64(tl.tMax-tl.tMin) * float64(width-1))
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		return i
	}
	for _, wid := range tl.workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range tl.spans[wid] {
			for i := bucket(s.startNs); i <= bucket(s.endNs); i++ {
				row[i] = '#'
			}
		}
		for _, ev := range tl.marks[wid] {
			if ev.Kind == "steal" {
				row[bucket(ev.TNs)] = 'S'
			}
		}
		name := fmt.Sprintf("w%-3d", wid)
		if wid < 0 {
			name = "ext "
		}
		fmt.Fprintf(&b, "%s |%s|\n", name, row)
	}
	b.WriteString("      '#' running a task   'S' steal landed   '.' idle\n")
	return b.String()
}
