package parctrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRenderHTMLSelfContained: the /tracez page is one self-contained
// document — doctype, inline SVG for both panels, and the machine-
// readable trace embedded as a valid JSON script block.
func TestRenderHTMLSelfContained(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, goldenDump()); err != nil {
		t.Fatalf("RenderHTML: %v", err)
	}
	page := buf.String()
	for _, want := range []string{
		"<!doctype html>", "<svg", "</html>", `id="trace-data"`,
		"region_start", "quicksort", "submit@3:delay",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("rendered page missing %q", want)
		}
	}
	// The embedded block must parse back as {dump, dag} JSON.
	start := strings.Index(page, `id="trace-data">`)
	end := strings.Index(page[start:], "</script>")
	if start < 0 || end < 0 {
		t.Fatal("trace-data script block not found")
	}
	blob := page[start+len(`id="trace-data">`) : start+end]
	var embedded struct {
		Dump *Dump `json:"dump"`
		DAG  *struct {
			Nodes []json.RawMessage `json:"nodes"`
			Edges []json.RawMessage `json:"edges"`
		} `json:"dag"`
	}
	if err := json.Unmarshal([]byte(blob), &embedded); err != nil {
		t.Fatalf("embedded trace-data is not valid JSON: %v", err)
	}
	if embedded.Dump == nil || embedded.Dump.Schema != SchemaV1 {
		t.Fatalf("embedded dump missing or wrong schema: %+v", embedded.Dump)
	}
	if embedded.DAG == nil || len(embedded.DAG.Nodes) == 0 {
		t.Fatal("embedded DAG is empty for a dump with task events")
	}
}

// TestRenderHTMLEmptyDump: a recorder that saw nothing still renders a
// complete page (the live /tracez endpoint can be hit before any load).
func TestRenderHTMLEmptyDump(t *testing.T) {
	var buf bytes.Buffer
	d := &Dump{Schema: SchemaV1, Name: "empty", Counts: map[string]uint64{}}
	if err := RenderHTML(&buf, d); err != nil {
		t.Fatalf("RenderHTML on empty dump: %v", err)
	}
	if !strings.Contains(buf.String(), "</html>") {
		t.Fatal("empty-dump page is truncated")
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(goldenDump(), 60)
	if out == "" {
		t.Fatal("empty ASCII timeline")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Workers -1 (external), and 1 appear in the golden events; each gets
	// a row, and the busy worker's row shows running ticks.
	var sawRun bool
	for _, ln := range lines {
		if strings.Contains(ln, "#") {
			sawRun = true
		}
	}
	if !sawRun {
		t.Fatalf("no run span rendered:\n%s", out)
	}
	for _, ln := range lines {
		if len(ln) > 120 {
			t.Fatalf("ASCII row wider than requested width budget: %d chars", len(ln))
		}
	}
}

// TestBuildDAGTruncation: the DAG view caps its node count so a huge
// trace cannot render an unusable page; truncation is flagged, not silent.
func TestBuildDAGTruncation(t *testing.T) {
	d := &Dump{Schema: SchemaV1, Counts: map[string]uint64{}}
	for i := 0; i < maxDAGNodes+50; i++ {
		d.Events = append(d.Events, DumpEvent{TNs: int64(i), Kind: "submit", Task: uint64(i + 1)})
	}
	g := buildDAG(d)
	if len(g.Nodes) > maxDAGNodes {
		t.Fatalf("DAG has %d nodes, cap is %d", len(g.Nodes), maxDAGNodes)
	}
	if !g.Truncated {
		t.Fatal("truncation not flagged")
	}
}
