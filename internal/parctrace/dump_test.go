package parctrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"parc751/internal/faultinject"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenDump is a fully-populated fixed dump: every schema field is
// exercised so a rename or retag of any of them moves the golden bytes.
func goldenDump() *Dump {
	return &Dump{
		Schema:  SchemaV1,
		Name:    "golden",
		Seed:    751,
		Workers: 2,
		Workload: &WorkloadSpec{
			Kind: "quicksort", Seed: 751, N: 64, Workers: 2, Chaos: true,
		},
		Plan: &PlanSpec{
			Name: "golden-plan", Seed: 751,
			Rules: []RuleSpec{
				{Site: "submit", Kind: "delay", Nth: 3, Count: 1, DurNs: 200000},
				{Site: "taskbody", Kind: "panic", Every: 7},
			},
		},
		Counts: map[string]uint64{
			"submit": 5, "steal": 1, "run": 5, "complete": 5,
			"depend": 2, "park": 1, "wake": 1,
			"region_start": 1, "region_end": 1,
		},
		Recorded:   6,
		Lost:       1,
		SampledOut: 15,
		Faults:     []string{"submit@3:delay", "taskbody@7:panic"},
		Events: []DumpEvent{
			{TNs: 100, Kind: "region_start", Worker: -1, Task: 1, Aux: 2},
			{TNs: 220, Kind: "submit", Worker: -1, Task: 2},
			{TNs: 300, Kind: "steal", Worker: 1, Task: 2},
			{TNs: 410, Kind: "run", Worker: 1, Task: 2},
			{TNs: 900, Kind: "complete", Worker: 1, Task: 2},
			{TNs: 1000, Kind: "region_end", Worker: -1, Task: 1, Aux: 2},
		},
	}
}

// TestTraceSchemaStability byte-compares the serialized golden dump with
// the committed file: any change to field names, tags, ordering, or the
// indentation format is a schema break and must bump SchemaV1 instead of
// silently rewriting v1. Regenerate deliberately with -update.
func TestTraceSchemaStability(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDump(&buf, goldenDump()); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	path := filepath.Join("testdata", "golden_trace_v1.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("dump format drifted from committed golden %s.\nIf the change is deliberate it is a schema bump: revise SchemaV1 and regenerate with -update.\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// TestTraceSchemaKeys pins the exact JSON key sets of every object in
// the v1 schema, table-driven over the golden file, so an added field is
// caught as loudly as a renamed one.
func TestTraceSchemaKeys(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_trace_v1.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatalf("golden is not a JSON object: %v", err)
	}
	keysOf := func(t *testing.T, raw json.RawMessage) []string {
		t.Helper()
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("not an object: %v", err)
		}
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	firstElem := func(t *testing.T, raw json.RawMessage) json.RawMessage {
		t.Helper()
		var arr []json.RawMessage
		if err := json.Unmarshal(raw, &arr); err != nil || len(arr) == 0 {
			t.Fatalf("not a non-empty array: %v", err)
		}
		return arr[0]
	}
	cases := []struct {
		name string
		raw  func(t *testing.T) json.RawMessage
		want []string
	}{
		{"top-level", func(t *testing.T) json.RawMessage { return raw },
			[]string{"counts", "events", "faults", "lost", "name", "plan", "recorded",
				"sampled_out", "schema", "seed", "workers", "workload"}},
		{"event", func(t *testing.T) json.RawMessage { return firstElem(t, top["events"]) },
			[]string{"aux", "kind", "t_ns", "task", "w"}},
		{"workload", func(t *testing.T) json.RawMessage { return top["workload"] },
			[]string{"chaos", "kind", "n", "seed", "workers"}},
		{"plan", func(t *testing.T) json.RawMessage { return top["plan"] },
			[]string{"name", "rules", "seed"}},
		{"rule", func(t *testing.T) json.RawMessage { return firstElem(t, top["plan"]) },
			nil}, // filled below: rules is nested inside plan
	}
	// The rule object lives at plan.rules[0].
	cases[4].raw = func(t *testing.T) json.RawMessage {
		var plan map[string]json.RawMessage
		if err := json.Unmarshal(top["plan"], &plan); err != nil {
			t.Fatalf("plan: %v", err)
		}
		return firstElem(t, plan["rules"])
	}
	cases[4].want = []string{"count", "dur_ns", "kind", "nth", "site"}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := keysOf(t, tc.raw(t)); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("key set drifted:\n got %v\nwant %v", got, tc.want)
			}
		})
	}
}

// TestDumpRoundTrip: Write→Read is lossless and the canonical projection
// survives the trip byte-for-byte.
func TestDumpRoundTrip(t *testing.T) {
	d := goldenDump()
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	back, err := ReadDump(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", back, d)
	}
	if a, b := d.Canonical(), back.Canonical(); !bytes.Equal(a, b) {
		t.Fatalf("canonical projection changed across the trip:\n %s\n %s", a, b)
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "{not json", "parsing dump"},
		{"wrong schema", `{"schema":"parc751/trace/v0"}`, "unsupported schema"},
		{"unknown kind", `{"schema":"parc751/trace/v1","events":[{"t_ns":1,"kind":"teleport","w":0}]}`, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDump([]byte(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestPlanSpecRoundTrip: every site and fault-kind name survives
// Plan→Spec→Plan, so a replayed schedule is built from the same rules.
func TestPlanSpecRoundTrip(t *testing.T) {
	p := faultinject.Plan{
		Name: "all-sites", Seed: 9,
		Rules: []faultinject.Rule{
			{Site: faultinject.SiteSubmit, Kind: faultinject.Delay, Nth: 1, Dur: time.Millisecond},
			{Site: faultinject.SiteSteal, Kind: faultinject.Stall, Every: 2, Dur: time.Microsecond},
			{Site: faultinject.SiteRun, Kind: faultinject.Panic, Count: 3},
			{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Error, Nth: 4},
			{Site: faultinject.SiteDispatch, Kind: faultinject.Hang, Count: 1},
			{Site: faultinject.SiteTaskBody, Kind: faultinject.Panic, Every: 5},
			{Site: faultinject.SiteTransport, Kind: faultinject.Error, Every: 1},
		},
	}
	back, err := PlanFromSpec(SpecFromPlan(p))
	if err != nil {
		t.Fatalf("PlanFromSpec: %v", err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("plan round trip lost rules:\n got %+v\nwant %+v", back, p)
	}
}

func TestPlanFromSpecRejectsUnknownNames(t *testing.T) {
	if _, err := PlanFromSpec(&PlanSpec{Rules: []RuleSpec{{Site: "warp", Kind: "delay"}}}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := PlanFromSpec(&PlanSpec{Rules: []RuleSpec{{Site: "submit", Kind: "glitter"}}}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// TestCanonicalExcludesAccidents: two dumps that differ only in
// scheduling accidents — steal/park/wake counts, timestamps, worker
// assignments, shedding accounting — have identical canonical bytes,
// while a drift in a deterministic count changes them.
func TestCanonicalExcludesAccidents(t *testing.T) {
	a, b := goldenDump(), goldenDump()
	b.Counts["steal"] = 42
	b.Counts["park"] = 9
	b.Counts["wake"] = 9
	b.Recorded, b.Lost, b.SampledOut = 999, 7, 3
	for i := range b.Events {
		b.Events[i].TNs += 12345
		b.Events[i].Worker = 0
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical projection leaked a nondeterministic field:\n %s\n %s",
			a.Canonical(), b.Canonical())
	}
	b.Counts["complete"]++
	if bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatal("canonical projection ignored a deterministic count drift")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d (%q) does not round trip: got %d ok=%v", k, k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("unknown"); ok {
		t.Fatal("KindFromString accepted the out-of-range placeholder name")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
