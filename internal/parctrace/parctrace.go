// Package parctrace is the runtime's deterministic task-DAG recorder:
// a low-overhead event tap that captures submit/steal/run/complete/
// depend/park/wake edges from the scheduler (internal/core), the task
// layer (internal/ptask), and Pyjama regions (internal/pyjama) into
// fixed-size per-worker ring buffers, dumps them as versioned JSON
// (schema parc751/trace/v1, dump.go), and renders them as a
// self-contained HTML/SVG viewer (render.go) — the TEMANEJO-style
// "make the schedule visible" debugger of DESIGN.md §15.
//
// The recorder is globally attached (Set/Active) the same way the chaos
// injector is: detached, every instrumentation hook costs one atomic
// pointer load and a predictable branch, which the disabled-overhead
// guard in internal/core pins. Attached, writes are lock-free (one
// fetch-add claim plus atomic stores into a preallocated slot) and
// allocation-free, and once a lane wraps the recorder samples — exact
// per-kind counters are always maintained, so accounting is conserved
// even when events are shed.
//
// Replay lives in internal/parctrace/replay: a dump carries the workload
// spec and the faultinject plan that produced it, which together are a
// complete schedule coordinate — re-executing them pins the fault
// schedule to the same per-site ordinals and the task DAG to the same
// shape, and Verify asserts the canonical projections are bit-identical.
package parctrace

import (
	"sync/atomic"
	"time"
)

// Kind classifies a recorded scheduler event.
type Kind uint8

const (
	// KSubmit: a task entered the pool (Task = trace id; Worker = the
	// submitting worker, -1 for an external goroutine).
	KSubmit Kind = iota
	// KSteal: a task moved between workers (Worker = thief, Aux = victim
	// worker id). Recorded only after the steal's CAS claim landed.
	KSteal
	// KRun: a worker began executing a task.
	KRun
	// KComplete: the task's execution finished (panics included — the
	// envelope completed either way).
	KComplete
	// KDepend: a dependence edge — Task waits on Aux (both trace ids).
	KDepend
	// KPark: a worker went idle (parked on its wake slot).
	KPark
	// KWake: a worker was woken by a submitter (recorded by the waker).
	KWake
	// KRegionStart: a Pyjama parallel region began (Task = region id,
	// Aux = team size).
	KRegionStart
	// KRegionEnd: the region joined (panic paths included).
	KRegionEnd
	numKinds
)

var kindNames = [numKinds]string{
	"submit", "steal", "run", "complete", "depend", "park", "wake",
	"region_start", "region_end",
}

// String returns the kind's dump-format name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString is the inverse of Kind.String; ok is false for names
// outside the schema.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one recorded edge. TNs is nanoseconds since the recorder
// started; Worker is -1 for events from goroutines outside the pool.
type Event struct {
	TNs    int64
	Kind   Kind
	Worker int32
	Task   uint64
	Aux    uint64
}

// Tagged is implemented by Runnables that pre-assigned their own trace
// task id (ptask.Task, ptask.MultiTask). The scheduler reuses it so
// submit/run/complete and the dependence edges recorded by the task
// layer all name the same DAG node.
type Tagged interface{ TraceTaskID() uint64 }

// Config sizes a Recorder. Zero values take the documented defaults.
type Config struct {
	// Workers is the pool size; the recorder keeps Workers+1 lanes
	// (lane 0 collects events from external goroutines).
	Workers int
	// LaneCap is the per-lane ring capacity, rounded up to a power of
	// two (default 4096).
	LaneCap int
	// SampleEvery thins recording once a lane has wrapped: only every
	// SampleEvery'th event of a kind is written (default 8; 1 disables
	// sampling). Counters stay exact regardless.
	SampleEvery int
}

// Recorder captures scheduler events into per-worker rings. All methods
// are safe for concurrent use; Record never allocates and never blocks.
type Recorder struct {
	base        time.Time
	lanes       []*ring
	sampleEvery uint64
	nextID      atomic.Uint64
	counts      [numKinds]atomic.Uint64
	sampled     atomic.Uint64 // events shed by load sampling
	dropped     atomic.Uint64 // ring writes lost to a lap race
}

// NewRecorder builds a detached recorder; attach it with Set.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.LaneCap <= 0 {
		cfg.LaneCap = 4096
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 8
	}
	r := &Recorder{
		base:        time.Now(),
		lanes:       make([]*ring, cfg.Workers+1),
		sampleEvery: uint64(cfg.SampleEvery),
	}
	for i := range r.lanes {
		r.lanes[i] = newRing(cfg.LaneCap)
	}
	return r
}

// active is the globally attached recorder, nil when tracing is off —
// the same one-pointer-load discipline as the chaos injector hooks.
var active atomic.Pointer[Recorder]

// Active returns the attached recorder, or nil. Instrumentation sites
// call this on every event; keep it trivially inlinable.
func Active() *Recorder { return active.Load() }

// Set attaches r (or detaches with nil) and returns the previous
// recorder, so scoped recording can restore what it displaced.
func Set(r *Recorder) *Recorder { return active.Swap(r) }

// NewTaskID allocates a fresh trace task id (ids start at 1; 0 means
// "not tracked").
func (r *Recorder) NewTaskID() uint64 { return r.nextID.Add(1) }

// laneIdx maps a worker id to its lane; out-of-range ids (and -1,
// external goroutines) share lane 0.
func (r *Recorder) laneIdx(worker int) int {
	if worker >= 0 && worker < len(r.lanes)-1 {
		return worker + 1
	}
	return 0
}

// Record captures one event. The per-kind counter is exact and always
// incremented; the ring write is sampled once the target lane has
// wrapped, and a write that loses a lap race is counted as dropped.
// Conservation: for every kind,
//
//	count == recorded + lost + sampled-out
//
// which Snapshot's accounting fields expose and the property tests pin.
func (r *Recorder) Record(k Kind, worker int, task, aux uint64) {
	n := r.counts[k].Add(1)
	lane := r.lanes[r.laneIdx(worker)]
	if r.sampleEvery > 1 && lane.wrapped() && n%r.sampleEvery != 0 {
		r.sampled.Add(1)
		return
	}
	if !lane.write(Event{
		TNs:    int64(time.Since(r.base)),
		Kind:   k,
		Worker: int32(worker),
		Task:   task,
		Aux:    aux,
	}) {
		r.dropped.Add(1)
	}
}

// Count returns the exact number of k events observed (recorded or shed).
func (r *Recorder) Count(k Kind) uint64 { return r.counts[k].Load() }

// SampledOut returns how many events were shed by load sampling.
func (r *Recorder) SampledOut() uint64 { return r.sampled.Load() }

// Dropped returns how many ring writes were lost to lap races.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Workers returns the number of worker lanes (excluding the external
// lane 0).
func (r *Recorder) Workers() int { return len(r.lanes) - 1 }
