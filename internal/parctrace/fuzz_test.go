package parctrace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTraceCodec feeds arbitrary bytes through the dump codec: ReadDump
// must reject garbage with an error (never panic), and anything it
// accepts must survive Write→Read losslessly, keep a stable canonical
// projection, and render through both viewers without panicking — the
// parser is the trust boundary for traces loaded off disk.
func FuzzTraceCodec(f *testing.F) {
	var golden bytes.Buffer
	if err := WriteDump(&golden, goldenDump()); err != nil {
		f.Fatal(err)
	}
	f.Add(golden.Bytes())
	f.Add([]byte(`{"schema":"parc751/trace/v1","counts":{},"events":[]}`))
	f.Add([]byte(`{"schema":"parc751/trace/v0"}`))
	f.Add([]byte(`{"schema":"parc751/trace/v1","events":[{"kind":"nope"}]}`))
	f.Add([]byte("{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDump(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, d); err != nil {
			t.Fatalf("WriteDump on accepted dump: %v", err)
		}
		back, err := ReadDump(buf.Bytes())
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(d.Canonical(), back.Canonical()) {
			t.Fatalf("canonical projection drifted across round trip")
		}
		if err := RenderHTML(io.Discard, d); err != nil {
			t.Fatalf("RenderHTML: %v", err)
		}
		_ = RenderASCII(d, 80)
	})
}

// FuzzRingOps replays an arbitrary op sequence against a sequential
// model of the ring. Single-writer, every claim publishes, so the model
// is exact: after k claims on a ring of capacity c, the snapshot window
// is the last min(k, c) events in claim order and lost == max(0, k-c).
// Interleaved snapshots must each satisfy the same invariant.
func FuzzRingOps(f *testing.F) {
	f.Add([]byte{4, 1, 1, 1, 0, 1, 1})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{7, 0})
	f.Add(bytes.Repeat([]byte{1}, 200))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		// First byte sizes the ring (bounded); the rest alternate between
		// a write (odd) and a snapshot check (even).
		r := newRing(int(ops[0]%64) + 1)
		c := r.capacity()
		var claims uint64
		check := func() {
			evs, lost := r.snapshot()
			var wantLost uint64
			if claims > c {
				wantLost = claims - c
			}
			if lost != wantLost {
				t.Fatalf("after %d claims (cap %d): lost = %d, want %d", claims, c, lost, wantLost)
			}
			if uint64(len(evs))+lost != claims {
				t.Fatalf("conservation: %d read + %d lost != %d claims", len(evs), lost, claims)
			}
			for i, ev := range evs {
				if want := claims - uint64(len(evs)) + uint64(i); ev.Task != want {
					t.Fatalf("window[%d].Task = %d, want %d", i, ev.Task, want)
				}
			}
		}
		for _, op := range ops[1:] {
			if op%2 == 1 {
				if !r.write(Event{Kind: Kind(op % uint8(numKinds)), Task: claims}) {
					t.Fatalf("sequential write %d dropped", claims)
				}
				claims++
			} else {
				check()
			}
		}
		check()
	})
}
