// Package replay turns a parctrace dump back into an execution: a dump
// carries the workload spec and the faultinject plan that produced it,
// which together are a complete schedule coordinate — the fault schedule
// is pinned to per-site event ordinals (deterministic by construction,
// A8) and the task DAG is pinned by the seeded workload. Record executes
// a coordinate under a fresh recorder; Replay re-executes a dump's
// coordinate; Verify asserts the two recordings' canonical projections
// are bit-identical and surfaced the same fault ordinals — the
// reproduce-a-production-failure contract of DESIGN.md §15 and A12.
package replay

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/parctrace"
	"parc751/internal/ptask"
	"parc751/internal/sortalgo"
	"parc751/internal/thumbs"
	"parc751/internal/webfetch"
	"parc751/internal/workload"
)

// quiesceDeadline bounds every recorded run: a workload that cannot
// drain within it has deadlocked, which is itself the bug to surface.
const quiesceDeadline = 30 * time.Second

// Workload kinds Record understands.
const (
	KindQuicksort = "quicksort"
	KindThumbs    = "thumbs"
	KindWebfetch  = "webfetch"
)

// Kinds lists the supported workload kinds.
func Kinds() []string { return []string{KindQuicksort, KindThumbs, KindWebfetch} }

// DefaultPlan derives the chaos plan for a workload spec: the same
// seeded rule shapes the A8 gauntlet uses, so a recorded chaos run is a
// realistic production failure. Without Chaos the plan is empty (named
// and seeded, so the coordinate stays complete).
func DefaultPlan(spec parctrace.WorkloadSpec) faultinject.Plan {
	plan := faultinject.Plan{
		Name: fmt.Sprintf("replay-%s-%d", spec.Kind, spec.Seed),
		Seed: spec.Seed,
	}
	if !spec.Chaos {
		return plan
	}
	switch spec.Kind {
	case KindQuicksort:
		plan.Rules = append(plan.Rules,
			faultinject.Scatter(spec.Seed, faultinject.SiteSubmit, faultinject.Delay, 4, 30, 200*time.Microsecond)...)
		plan.Rules = append(plan.Rules, faultinject.Rule{
			Site: faultinject.SiteRun, Kind: faultinject.Stall,
			Nth: spec.Seed % 16, Count: 1, Dur: 2 * time.Millisecond,
		})
	case KindThumbs:
		k := 3
		if spec.N < 8 {
			k = 1
		}
		plan.Rules = faultinject.Scatter(spec.Seed, faultinject.SiteTaskBody, faultinject.Panic, k, spec.N, 0)
	case KindWebfetch:
		plan.Rules = []faultinject.Rule{{
			Site: faultinject.SiteTransport, Kind: faultinject.Error, Every: 1,
		}}
	}
	return plan
}

// Normalize fills a spec's defaults in place and returns it, so Record
// and a later Replay of its dump agree on the exact coordinate.
func Normalize(spec parctrace.WorkloadSpec) (parctrace.WorkloadSpec, error) {
	switch spec.Kind {
	case KindQuicksort:
		if spec.N <= 0 {
			spec.N = 6000
		}
	case KindThumbs:
		if spec.N <= 0 {
			spec.N = 32
		}
	case KindWebfetch:
		if spec.N <= 0 {
			spec.N = 12
		}
	default:
		return spec, fmt.Errorf("replay: unknown workload kind %q (have %s)",
			spec.Kind, strings.Join(Kinds(), ", "))
	}
	if spec.Seed == 0 {
		spec.Seed = 751
	}
	if spec.Workers < 2 {
		spec.Workers = 2
	}
	return spec, nil
}

// Record executes spec under a fresh recorder and returns the dump,
// stamped with the spec, the plan, and the fault-ordinal trace. laneCap
// sizes the per-worker rings (0 = default).
func Record(spec parctrace.WorkloadSpec, laneCap int) (*parctrace.Dump, error) {
	spec, err := Normalize(spec)
	if err != nil {
		return nil, err
	}
	plan := DefaultPlan(spec)
	in := faultinject.New(plan)
	rec := parctrace.NewRecorder(parctrace.Config{Workers: spec.Workers, LaneCap: laneCap})
	prev := parctrace.Set(rec)
	defer parctrace.Set(prev)

	switch spec.Kind {
	case KindQuicksort:
		err = runQuicksort(spec, in)
	case KindThumbs:
		err = runThumbs(spec, in)
	case KindWebfetch:
		err = runWebfetch(spec, in)
	}
	parctrace.Set(prev) // detach before snapshotting: the window is final
	if err != nil {
		return nil, err
	}
	d := rec.Snapshot(parctrace.Meta{
		Name:     plan.Name,
		Seed:     spec.Seed,
		Workload: &spec,
		Plan:     parctrace.SpecFromPlan(plan),
		Faults:   strings.Fields(in.TraceString()),
	})
	return d, nil
}

// Replay re-executes a dump's recorded coordinate and returns the new
// recording. Use Verify to compare the two.
func Replay(d *parctrace.Dump, laneCap int) (*parctrace.Dump, error) {
	if d.Workload == nil {
		return nil, fmt.Errorf("replay: dump %q carries no workload spec — not replayable", d.Name)
	}
	return Record(*d.Workload, laneCap)
}

// Verify asserts the replay contract between two recordings of the same
// coordinate: byte-identical canonical projections (schema, coordinate,
// deterministic event counts, fault trace) and identical fault-ordinal
// sets. A nil error means the replay reproduced the recording.
func Verify(recorded, replayed *parctrace.Dump) error {
	a, b := recorded.Canonical(), replayed.Canonical()
	if string(a) != string(b) {
		return fmt.Errorf("replay: canonical traces differ:\n recorded: %s\n replayed: %s", a, b)
	}
	fa, fb := recorded.FaultSet(), replayed.FaultSet()
	if len(fa) != len(fb) {
		return fmt.Errorf("replay: fault sets differ: %d recorded vs %d replayed", len(fa), len(fb))
	}
	for f := range fa {
		if !fb[f] {
			return fmt.Errorf("replay: fault %s recorded but not replayed", f)
		}
	}
	return nil
}

// runQuicksort is the paper's project-2 workload: recursive task-parallel
// quicksort over a seeded array, optionally under delay/stall chaos.
func runQuicksort(spec parctrace.WorkloadSpec, in *faultinject.Injector) error {
	threshold := 512
	if spec.N >= 20000 {
		threshold = 1024
	}
	rt := ptask.NewRuntime(spec.Workers)
	rt.SetFaultInjector(in)
	xs := workload.IntArray(spec.Seed, spec.N, 1<<30)
	done := make(chan struct{})
	go func() { sortalgo.PTask(rt, xs, threshold); close(done) }()
	select {
	case <-done:
	case <-time.After(quiesceDeadline):
		return fmt.Errorf("replay: quicksort deadlocked under plan")
	}
	if !sort.IntsAreSorted(xs) {
		return fmt.Errorf("replay: quicksort output not sorted")
	}
	return rt.ShutdownTimeout(quiesceDeadline)
}

// runThumbs is the thumbnail fan-out (project 3): one multi-task over a
// seeded image set under the collect-all policy, optionally with seeded
// task-body panics. Injected panics are expected failures, not errors —
// they are exactly what the recording exists to reproduce.
func runThumbs(spec parctrace.WorkloadSpec, in *faultinject.Injector) error {
	rt := ptask.NewRuntime(spec.Workers)
	rt.SetFaultInjector(in)
	imgs := workload.GenImageSet(spec.Seed, spec.N, 32, 64)
	m := ptask.RunMultiPolicy(rt, spec.N, ptask.MultiCollectAll, func(i int) (*workload.Image, error) {
		return thumbs.Scale(imgs[i], 16, 16), nil
	})
	select {
	case <-m.Done():
	case <-time.After(quiesceDeadline):
		return fmt.Errorf("replay: thumbs deadlocked under plan")
	}
	vals, _ := m.Results()
	rendered := 0
	for _, v := range vals {
		if v != nil {
			rendered++
		}
	}
	faulted := in.FiredAt(faultinject.SiteTaskBody, faultinject.Panic)
	if rendered != spec.N-faulted {
		return fmt.Errorf("replay: thumbs rendered %d of %d with %d injected panics",
			rendered, spec.N, faulted)
	}
	return rt.ShutdownTimeout(quiesceDeadline)
}

// runWebfetch is the circuit-breaker workload: N fetches against an
// unreachable origin through a serialized connection, with the chaos
// plan failing every transport attempt, so the breaker trips after its
// threshold and refuses the rest — a deterministic failure cascade.
func runWebfetch(spec parctrace.WorkloadSpec, in *faultinject.Injector) error {
	const threshold = 3
	rt := ptask.NewRuntime(spec.Workers)
	rt.SetFaultInjector(in)
	f := webfetch.NewFetcher(rt, &http.Client{
		Transport: &faultinject.RoundTripper{Injector: in},
	}, 1)
	f.SetBreaker(webfetch.NewBreaker(threshold, time.Hour))
	urls := make([]string, spec.N)
	for i := range urls {
		// Port 0 is unroutable: without an injected error the dial fails
		// immediately, so the run needs no origin server either way.
		urls[i] = fmt.Sprintf("http://127.0.0.1:0/p/%d", i)
	}
	res := f.FetchAll(urls, nil)
	for _, r := range res {
		if r.Err == nil {
			return fmt.Errorf("replay: webfetch %s succeeded against an unreachable origin", r.URL)
		}
	}
	return rt.ShutdownTimeout(quiesceDeadline)
}
