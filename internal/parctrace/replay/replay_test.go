package replay

import (
	"strings"
	"testing"

	"parc751/internal/parctrace"
)

// TestReplayDeterminism is the package contract end to end: for every
// workload kind and several seeds, record a seeded chaos run, replay its
// dump's coordinate, and require the canonical projections to be
// bit-identical with the same fault ordinals. This is the in-process
// half of experiment A12 (the registered ablation runs the same matrix).
func TestReplayDeterminism(t *testing.T) {
	seeds := []uint64{751, 852, 953}
	sizes := map[string]int{KindQuicksort: 1500, KindThumbs: 10, KindWebfetch: 6}
	for _, kind := range Kinds() {
		for _, seed := range seeds {
			t.Run(kind+"/"+itoa(seed), func(t *testing.T) {
				spec := parctrace.WorkloadSpec{
					Kind: kind, Seed: seed, N: sizes[kind], Workers: 2, Chaos: true,
				}
				rec, err := Record(spec, 512)
				if err != nil {
					t.Fatalf("Record: %v", err)
				}
				if len(rec.Faults) == 0 {
					t.Fatalf("chaos run surfaced no fault ordinals: plan %+v", rec.Plan)
				}
				if rec.Counts["submit"] == 0 && rec.Counts["region_start"] == 0 {
					t.Fatal("recording captured no work")
				}
				rep, err := Replay(rec, 512)
				if err != nil {
					t.Fatalf("Replay: %v", err)
				}
				if err := Verify(rec, rep); err != nil {
					t.Fatalf("replay diverged: %v", err)
				}
			})
		}
	}
}

// TestReplayRequiresCoordinate: a dump without a workload spec cannot be
// replayed and says so.
func TestReplayRequiresCoordinate(t *testing.T) {
	if _, err := Replay(&parctrace.Dump{Schema: parctrace.SchemaV1, Name: "bare"}, 0); err == nil {
		t.Fatal("coordinate-free dump replayed")
	}
}

// TestNormalize pins the defaulting rules Record and Replay both rely
// on: the same input spec must normalize identically on both sides.
func TestNormalize(t *testing.T) {
	spec, err := Normalize(parctrace.WorkloadSpec{Kind: KindQuicksort})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N == 0 || spec.Seed == 0 || spec.Workers < 2 {
		t.Fatalf("defaults not filled: %+v", spec)
	}
	if _, err := Normalize(parctrace.WorkloadSpec{Kind: "tetris"}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload kind") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

// TestVerifyRejectsDivergence: Verify must fail loudly when the replay
// produced a different deterministic count or fault set.
func TestVerifyRejectsDivergence(t *testing.T) {
	spec := parctrace.WorkloadSpec{Kind: KindThumbs, Seed: 7, N: 8, Workers: 2, Chaos: true}
	a, err := Record(spec, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	b.Counts["complete"]++
	if err := Verify(a, b); err == nil {
		t.Fatal("count divergence not detected")
	}
	b.Counts["complete"]--
	b.Faults = append([]string{}, b.Faults...)
	b.Faults[0] = "submit@999999:delay"
	if err := Verify(a, b); err == nil {
		t.Fatal("fault divergence not detected")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
