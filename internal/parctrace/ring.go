package parctrace

import "sync/atomic"

// ring is a fixed-capacity lock-free event ring. Writers claim slots with
// a single fetch-add on pos; the slot's sequence word arbitrates between
// a slow writer and a faster lap overwriting the same slot. All event
// payload words are atomics, so a concurrent reader (a live /tracez dump)
// observes either a fully published event or detects the torn slot via
// the seq re-check and skips it — a seqlock per slot, race-detector clean.
//
// Sequence protocol for claim n (slot n&mask):
//
//	previous published value:  0 for the first lap, else (n-cap+1)<<1
//	writing marker:            previous | 1
//	published value:           (n+1)<<1
//
// A writer CASes previous→writing; a failed CAS means either a slower
// writer from the prior lap still owns the slot or a faster lap already
// passed this claim — both mean this event is lost, and write reports
// false so the recorder can account for it. Published values are even,
// strictly increasing, and unique per claim, so a reader comparing the
// seq word against the claim's expected value can never mistake another
// lap's event for this one.
type ring struct {
	mask  uint64
	pos   atomic.Uint64 // next claim index (total claims so far)
	slots []rslot
}

// rslot is one ring slot: the seq word plus the event payload split into
// four atomically written words (time, kind|worker, task, aux).
type rslot struct {
	seq atomic.Uint64
	t   atomic.Int64
	kw  atomic.Uint64 // Kind<<32 | uint32(Worker)
	tk  atomic.Uint64
	ax  atomic.Uint64
}

// newRing rounds capacity up to a power of two (minimum 2).
func newRing(capacity int) *ring {
	c := 2
	for c < capacity {
		c <<= 1
	}
	return &ring{mask: uint64(c - 1), slots: make([]rslot, c)}
}

func (r *ring) capacity() uint64 { return r.mask + 1 }

// wrapped reports whether the ring has started overwriting (claims
// exceed capacity) — the signal the recorder uses to begin sampling.
func (r *ring) wrapped() bool { return r.pos.Load() > r.mask }

// write claims the next slot and publishes ev. It returns false when the
// claim lost its slot to a lap race: the event is dropped whole, never
// half-written.
func (r *ring) write(ev Event) bool {
	n := r.pos.Add(1) - 1
	s := &r.slots[n&r.mask]
	var prev uint64
	if n > r.mask {
		prev = (n - r.capacity() + 1) << 1
	}
	if !s.seq.CompareAndSwap(prev, prev|1) {
		return false
	}
	s.t.Store(ev.TNs)
	s.kw.Store(uint64(ev.Kind)<<32 | uint64(uint32(ev.Worker)))
	s.tk.Store(ev.Task)
	s.ax.Store(ev.Aux)
	s.seq.Store((n + 1) << 1)
	return true
}

// snapshot returns the readable window in claim order plus the number of
// claims whose events are unavailable: overwritten by a later lap,
// dropped mid-write, or torn under a concurrent writer during this read.
func (r *ring) snapshot() (evs []Event, lost uint64) {
	hi := r.pos.Load()
	var lo uint64
	if c := r.capacity(); hi > c {
		lo = hi - c
		lost = lo
	}
	evs = make([]Event, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s := &r.slots[i&r.mask]
		want := (i + 1) << 1
		if s.seq.Load() != want {
			lost++
			continue
		}
		ev := Event{TNs: s.t.Load()}
		kw := s.kw.Load()
		ev.Kind = Kind(kw >> 32)
		ev.Worker = int32(uint32(kw))
		ev.Task = s.tk.Load()
		ev.Aux = s.ax.Load()
		if s.seq.Load() != want {
			lost++
			continue
		}
		evs = append(evs, ev)
	}
	return evs, lost
}
