package parctrace

import (
	"sync"
	"testing"
)

// TestRingConcurrentConservation is the ring's core property test, run
// under -race in CI with more writers than the host has CPUs: after W
// concurrent writers finish, every claim is accounted for — it is either
// readable in the snapshot window or counted lost (overwritten by a
// later lap, or dropped whole by a lap race) — and the events that did
// survive preserve each writer's program order.
func TestRingConcurrentConservation(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
		laneCap   = 256 // far smaller than the write volume: laps guaranteed
	)
	r := newRing(laneCap)
	var wg sync.WaitGroup
	wg.Add(writers)
	var dropped [writers]uint64
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Task encodes (writer, sequence) so the snapshot can
				// check per-writer order without any auxiliary state.
				ev := Event{Kind: KSubmit, Worker: int32(w), Task: uint64(w)<<32 | uint64(i)}
				if !r.write(ev) {
					dropped[w]++
				}
			}
		}()
	}
	wg.Wait()

	evs, lost := r.snapshot()
	claims := r.pos.Load()
	if claims != writers*perWriter {
		t.Fatalf("claims = %d, want %d", claims, writers*perWriter)
	}
	if got := uint64(len(evs)) + lost; got != claims {
		t.Fatalf("conservation broken: %d readable + %d lost = %d, want %d claims",
			len(evs), lost, got, claims)
	}
	if uint64(len(evs)) > r.capacity() {
		t.Fatalf("snapshot window %d exceeds capacity %d", len(evs), r.capacity())
	}
	// A dropped claim never publishes its sequence word, so the reader
	// counts it lost — below the window it is part of the shortfall, in
	// the window it is a seq mismatch. Either way, lost bounds dropped.
	var droppedTotal uint64
	for _, d := range dropped {
		droppedTotal += d
	}
	if lost < droppedTotal {
		t.Fatalf("lost %d < dropped %d: a dropped claim was read back", lost, droppedTotal)
	}
	// Per-writer order: fetch-add claims are totally ordered, and each
	// writer's claims are issued in its program order, so surviving
	// events from one writer must appear in increasing sequence.
	lastSeq := make(map[int32]uint64, writers)
	for _, ev := range evs {
		seq := ev.Task & 0xffffffff
		if prev, ok := lastSeq[ev.Worker]; ok && seq <= prev {
			t.Fatalf("writer %d order violated: seq %d after %d", ev.Worker, seq, prev)
		}
		lastSeq[ev.Worker] = seq
	}
}

// TestRingNoLossWithinCapacity: a ring large enough for the whole write
// volume loses nothing, even under concurrent writers — the lap race
// cannot occur before the first wrap.
func TestRingNoLossWithinCapacity(t *testing.T) {
	const writers, perWriter = 8, 100
	r := newRing(writers * perWriter)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if !r.write(Event{Kind: KRun, Worker: int32(w), Task: uint64(i)}) {
					t.Errorf("write dropped before first wrap")
					return
				}
			}
		}()
	}
	wg.Wait()
	evs, lost := r.snapshot()
	if lost != 0 {
		t.Fatalf("lost %d events with capacity %d for %d writes", lost, r.capacity(), writers*perWriter)
	}
	if len(evs) != writers*perWriter {
		t.Fatalf("read %d events, wrote %d", len(evs), writers*perWriter)
	}
}

// TestRingSequentialWrap pins the exact single-writer wrap accounting:
// after k > cap writes the window holds the last cap events in order and
// lost equals k - cap.
func TestRingSequentialWrap(t *testing.T) {
	const capacity, total = 8, 29
	r := newRing(capacity)
	for i := 0; i < total; i++ {
		if !r.write(Event{Kind: KComplete, Task: uint64(i)}) {
			t.Fatalf("sequential write %d dropped", i)
		}
	}
	evs, lost := r.snapshot()
	if lost != total-capacity {
		t.Fatalf("lost = %d, want %d", lost, total-capacity)
	}
	if len(evs) != capacity {
		t.Fatalf("window = %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := uint64(total - capacity + i); ev.Task != want {
			t.Fatalf("window[%d].Task = %d, want %d", i, ev.Task, want)
		}
	}
}

// TestRecorderConservation pins the recorder-level identity the dump
// accounting is built on: for the whole recording,
//
//	sum(counts) == recorded + lost + sampled-out
//
// with tiny lanes and aggressive sampling so all three sinks are
// exercised by ≥8 concurrent recording goroutines.
func TestRecorderConservation(t *testing.T) {
	const writers, perWriter = 8, 4000
	rec := NewRecorder(Config{Workers: 4, LaneCap: 64, SampleEvery: 4})
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Cycle workers (including -1, the external lane) and
				// kinds so every lane and every counter participates.
				rec.Record(Kind(i%int(numKinds)), w%6-1, uint64(i), 0)
			}
		}()
	}
	wg.Wait()
	d := rec.Snapshot(Meta{Name: "conservation"})

	var counted uint64
	for k := Kind(0); k < numKinds; k++ {
		counted += rec.Count(k)
	}
	if counted != writers*perWriter {
		t.Fatalf("counters = %d, want %d (counters must be exact under sampling)",
			counted, writers*perWriter)
	}
	if got := d.Recorded + d.Lost + d.SampledOut; got != counted {
		t.Fatalf("conservation broken: recorded %d + lost %d + sampled %d = %d, want %d",
			d.Recorded, d.Lost, d.SampledOut, got, counted)
	}
	if d.SampledOut == 0 {
		t.Fatalf("sampling never engaged: lanes of cap 64 under %d events must wrap", writers*perWriter)
	}
}

// TestRecorderSampleEveryOne: SampleEvery 1 disables shedding entirely —
// every event reaches its ring, so the only losses are window overwrites.
func TestRecorderSampleEveryOne(t *testing.T) {
	rec := NewRecorder(Config{Workers: 2, LaneCap: 32, SampleEvery: 1})
	const total = 500
	for i := 0; i < total; i++ {
		rec.Record(KSubmit, 0, uint64(i), 0)
	}
	if rec.SampledOut() != 0 {
		t.Fatalf("SampleEvery=1 shed %d events", rec.SampledOut())
	}
	d := rec.Snapshot(Meta{Name: "nosample"})
	if got := d.Recorded + d.Lost; got != total {
		t.Fatalf("recorded %d + lost %d = %d, want %d", d.Recorded, d.Lost, got, total)
	}
	if d.Recorded != 32 {
		t.Fatalf("window holds %d events, want the full lane capacity 32", d.Recorded)
	}
}
