package parctrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"parc751/internal/faultinject"
)

// SchemaV1 is the versioned dump format identifier. Old traces must keep
// loading: field renames are schema bumps, and TestTraceSchemaStability
// pins the committed golden file against exactly this layout.
const SchemaV1 = "parc751/trace/v1"

// Dump is the serialized form of a recording: metadata, exact per-kind
// counters, the shedding accounting, the fault-ordinal trace, and the
// recorded event window merged across lanes in time order.
type Dump struct {
	Schema     string            `json:"schema"`
	Name       string            `json:"name"`
	Seed       uint64            `json:"seed"`
	Workers    int               `json:"workers"`
	Workload   *WorkloadSpec     `json:"workload,omitempty"`
	Plan       *PlanSpec         `json:"plan,omitempty"`
	Counts     map[string]uint64 `json:"counts"`
	Recorded   uint64            `json:"recorded"`
	Lost       uint64            `json:"lost"`
	SampledOut uint64            `json:"sampled_out"`
	Faults     []string          `json:"faults,omitempty"`
	Events     []DumpEvent       `json:"events"`
}

// DumpEvent is one event in dump form; kinds use their schema names.
type DumpEvent struct {
	TNs    int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Worker int32  `json:"w"`
	Task   uint64 `json:"task,omitempty"`
	Aux    uint64 `json:"aux,omitempty"`
}

// WorkloadSpec names a re-executable workload: together with the plan it
// is the dump's replay coordinate (internal/parctrace/replay).
type WorkloadSpec struct {
	Kind    string `json:"kind"`
	Seed    uint64 `json:"seed"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	Chaos   bool   `json:"chaos,omitempty"`
}

// PlanSpec is a faultinject.Plan in dump form (string site/kind names).
type PlanSpec struct {
	Name  string     `json:"name"`
	Seed  uint64     `json:"seed"`
	Rules []RuleSpec `json:"rules,omitempty"`
}

// RuleSpec is one fault rule in dump form.
type RuleSpec struct {
	Site  string `json:"site"`
	Kind  string `json:"kind"`
	Nth   uint64 `json:"nth,omitempty"`
	Every uint64 `json:"every,omitempty"`
	Count uint64 `json:"count,omitempty"`
	DurNs int64  `json:"dur_ns,omitempty"`
}

// SpecFromPlan converts a live fault plan to its dump form.
func SpecFromPlan(p faultinject.Plan) *PlanSpec {
	spec := &PlanSpec{Name: p.Name, Seed: p.Seed}
	for _, r := range p.Rules {
		spec.Rules = append(spec.Rules, RuleSpec{
			Site:  r.Site.String(),
			Kind:  r.Kind.String(),
			Nth:   r.Nth,
			Every: r.Every,
			Count: r.Count,
			DurNs: int64(r.Dur),
		})
	}
	return spec
}

// siteFromString is the inverse of faultinject.Site.String.
var siteByName = map[string]faultinject.Site{
	"submit":    faultinject.SiteSubmit,
	"steal":     faultinject.SiteSteal,
	"run":       faultinject.SiteRun,
	"barrier":   faultinject.SiteBarrierArrive,
	"dispatch":  faultinject.SiteDispatch,
	"taskbody":  faultinject.SiteTaskBody,
	"transport": faultinject.SiteTransport,
}

var faultKindByName = map[string]faultinject.Kind{
	"delay": faultinject.Delay,
	"stall": faultinject.Stall,
	"panic": faultinject.Panic,
	"error": faultinject.Error,
	"hang":  faultinject.Hang,
}

// PlanFromSpec rebuilds a live fault plan from its dump form. Unknown
// site or kind names are errors: silently dropping a rule would replay a
// different schedule than the one recorded.
func PlanFromSpec(spec *PlanSpec) (faultinject.Plan, error) {
	p := faultinject.Plan{Name: spec.Name, Seed: spec.Seed}
	for i, r := range spec.Rules {
		site, ok := siteByName[r.Site]
		if !ok {
			return p, fmt.Errorf("parctrace: plan rule %d: unknown site %q", i, r.Site)
		}
		kind, ok := faultKindByName[r.Kind]
		if !ok {
			return p, fmt.Errorf("parctrace: plan rule %d: unknown fault kind %q", i, r.Kind)
		}
		p.Rules = append(p.Rules, faultinject.Rule{
			Site:  site,
			Kind:  kind,
			Nth:   r.Nth,
			Every: r.Every,
			Count: r.Count,
			Dur:   time.Duration(r.DurNs),
		})
	}
	return p, nil
}

// Meta carries the identifying context a Snapshot stamps onto the dump.
type Meta struct {
	Name     string
	Seed     uint64
	Workload *WorkloadSpec
	Plan     *PlanSpec
	Faults   []string
}

// Snapshot assembles the dump: per-kind counters, shedding accounting,
// and the recorded window of every lane merged into one time-ordered
// event list. Call it after the workload has quiesced; a snapshot taken
// mid-run is consistent (torn slots are skipped and counted lost) but
// the window is whatever the rings held at that instant.
func (r *Recorder) Snapshot(meta Meta) *Dump {
	d := &Dump{
		Schema:   SchemaV1,
		Name:     meta.Name,
		Seed:     meta.Seed,
		Workers:  r.Workers(),
		Workload: meta.Workload,
		Plan:     meta.Plan,
		Counts:   map[string]uint64{},
		Faults:   meta.Faults,
	}
	for k := Kind(0); k < numKinds; k++ {
		if c := r.counts[k].Load(); c > 0 {
			d.Counts[k.String()] = c
		}
	}
	d.SampledOut = r.sampled.Load()
	type laneEv struct {
		ev   Event
		lane int
		idx  int
	}
	var all []laneEv
	for li, lane := range r.lanes {
		evs, lost := lane.snapshot()
		d.Lost += lost
		for i, ev := range evs {
			all = append(all, laneEv{ev, li, i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.TNs != all[j].ev.TNs {
			return all[i].ev.TNs < all[j].ev.TNs
		}
		if all[i].lane != all[j].lane {
			return all[i].lane < all[j].lane
		}
		return all[i].idx < all[j].idx
	})
	d.Events = make([]DumpEvent, len(all))
	for i, le := range all {
		d.Events[i] = DumpEvent{
			TNs:    le.ev.TNs,
			Kind:   le.ev.Kind.String(),
			Worker: le.ev.Worker,
			Task:   le.ev.Task,
			Aux:    le.ev.Aux,
		}
	}
	d.Recorded = uint64(len(d.Events))
	return d
}

// WriteDump serializes d as indented JSON (the committed-golden and CLI
// format).
func WriteDump(w io.Writer, d *Dump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDump parses and validates a dump. Unknown schemas and malformed
// event kinds are errors — a trace written by a future format must fail
// loudly here, not render garbage.
func ReadDump(data []byte) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("parctrace: parsing dump: %w", err)
	}
	if d.Schema != SchemaV1 {
		return nil, fmt.Errorf("parctrace: unsupported schema %q (want %q)", d.Schema, SchemaV1)
	}
	for i, ev := range d.Events {
		if _, ok := KindFromString(ev.Kind); !ok {
			return nil, fmt.Errorf("parctrace: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return &d, nil
}

// deterministicKinds are the event classes whose exact counts are a
// function of the (workload, plan) pair alone: what was submitted, what
// ran, what completed, the dependence edges, and the region structure.
// Steal/park/wake counts and all timestamps are scheduling accidents —
// they vary run to run on the same coordinate — so the canonical
// projection excludes them.
var deterministicKinds = []Kind{KSubmit, KRun, KComplete, KDepend, KRegionStart, KRegionEnd}

// Canonical returns the deterministic projection of the dump as bytes:
// schema, name, replay coordinate (workload + plan), the deterministic
// event counts, and the sorted fault-ordinal trace. Two recordings of
// the same coordinate must produce byte-identical canonical forms —
// that is the replay contract A12 and replay.Verify enforce.
func (d *Dump) Canonical() []byte {
	type canonical struct {
		Schema   string            `json:"schema"`
		Name     string            `json:"name"`
		Workload *WorkloadSpec     `json:"workload,omitempty"`
		Plan     *PlanSpec         `json:"plan,omitempty"`
		Counts   map[string]uint64 `json:"counts"`
		Faults   []string          `json:"faults"`
	}
	c := canonical{
		Schema:   d.Schema,
		Name:     d.Name,
		Workload: d.Workload,
		Plan:     d.Plan,
		Counts:   map[string]uint64{},
		Faults:   append([]string{}, d.Faults...),
	}
	for _, k := range deterministicKinds {
		if n, ok := d.Counts[k.String()]; ok {
			c.Counts[k.String()] = n
		}
	}
	sort.Strings(c.Faults)
	// Map keys marshal sorted and every field is deterministic, so this
	// never varies for a fixed projection; Marshal cannot fail on it.
	b, err := json.Marshal(c)
	if err != nil {
		panic("parctrace: canonical marshal: " + err.Error())
	}
	return b
}

// FaultSet returns the dump's fault-ordinal trace as a set.
func (d *Dump) FaultSet() map[string]bool {
	set := make(map[string]bool, len(d.Faults))
	for _, f := range d.Faults {
		set[f] = true
	}
	return set
}
