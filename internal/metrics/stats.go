// Package metrics provides the measurement and reporting substrate used by
// every experiment in the reproduction: streaming summary statistics,
// speedup/efficiency calculations, and plain-text table/series rendering so
// the benchmark harness can print the same rows and curves the paper's
// student projects reported.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates streaming summary statistics using Welford's
// algorithm, which is numerically stable for long runs. The zero value is
// an empty summary ready for use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddDuration folds a duration, recorded in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval for the mean
// under a normal approximation (1.96 standard errors). It returns 0 when
// fewer than two observations are present.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into s, as if every observation in o had
// been Added to s. Min/max are exact; mean/variance use the parallel
// variance combination rule, so Merge is the reduction operator that makes
// Summary usable from concurrent workers.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
}

// String renders the summary as "mean ± ci95 [min, max] (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.mean, s.CI95(), s.min, s.max, s.n)
}

// Speedup returns base/parallel: how many times faster the parallel time
// is relative to the baseline time. Returns +Inf when parallel is zero and
// NaN when both are zero.
func Speedup(base, parallel float64) float64 {
	if parallel == 0 {
		if base == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return base / parallel
}

// Efficiency returns Speedup(base, parallel) / p, the per-processor
// utilisation of a run on p processors.
func Efficiency(base, parallel float64, p int) float64 {
	if p <= 0 {
		return math.NaN()
	}
	return Speedup(base, parallel) / float64(p)
}

// Percentile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted; a copy is
// sorted internally. It returns NaN for an empty slice.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// GeoMean returns the geometric mean of xs, which must all be positive.
// It returns NaN for an empty slice or any non-positive element.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
