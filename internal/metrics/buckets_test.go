package metrics

import (
	"testing"
	"time"
)

// TestBucketsEmpty: an untouched histogram exports no buckets (the /statz
// compact form must be empty, not a 32-wide zero array).
func TestBucketsEmpty(t *testing.T) {
	var h LatencyHistogram
	if bs := h.Snapshot().Buckets(); len(bs) != 0 {
		t.Fatalf("empty histogram exports %d buckets: %v", len(bs), bs)
	}
}

// TestBucketsSingle: one observation exports exactly one bucket whose
// bound brackets the observed duration.
func TestBucketsSingle(t *testing.T) {
	var h LatencyHistogram
	const d = 700 * time.Nanosecond // bucket [512ns, 1024ns)
	h.Observe(d)
	bs := h.Snapshot().Buckets()
	if len(bs) != 1 {
		t.Fatalf("single observation exports %d buckets: %v", len(bs), bs)
	}
	if bs[0].Count != 1 {
		t.Fatalf("count = %d, want 1", bs[0].Count)
	}
	if bs[0].Hi < d || bs[0].Hi > 2*d {
		t.Fatalf("bucket bound %v does not bracket observation %v", bs[0].Hi, d)
	}
}

// TestBucketsZeroAndNegative: zero and negative (clamped) durations land
// in the lowest bucket, whose bound is the smallest representable.
func TestBucketsZeroAndNegative(t *testing.T) {
	var h LatencyHistogram
	h.Observe(0)
	h.Observe(-time.Second)
	bs := h.Snapshot().Buckets()
	if len(bs) != 1 || bs[0].Count != 2 {
		t.Fatalf("clamped observations: %v", bs)
	}
	if bs[0].Hi != 1 {
		t.Fatalf("lowest bucket bound = %v, want 1ns", bs[0].Hi)
	}
}

// TestBucketsOverflow: durations beyond the highest tracked bound all
// fold into the final bucket, and its exported bound stays a sane
// duration (not an overflowed negative).
func TestBucketsOverflow(t *testing.T) {
	var h LatencyHistogram
	h.Observe(time.Hour)
	h.Observe(24 * 365 * time.Hour)
	bs := h.Snapshot().Buckets()
	if len(bs) != 1 {
		t.Fatalf("overflow observations spread across %d buckets: %v", len(bs), bs)
	}
	if bs[0].Count != 2 {
		t.Fatalf("overflow bucket count = %d, want 2", bs[0].Count)
	}
	if bs[0].Hi <= 0 {
		t.Fatalf("overflow bucket bound %v is not positive", bs[0].Hi)
	}
	if bs[0].Hi != bucketHi(latencyBuckets-1) {
		t.Fatalf("overflow bound = %v, want top bucket's %v", bs[0].Hi, bucketHi(latencyBuckets-1))
	}
}

// TestBucketsAscendingAndConserving: bounds strictly ascend and the
// exported counts sum to the snapshot total — the export drops empty
// buckets, never observations.
func TestBucketsAscendingAndConserving(t *testing.T) {
	var h LatencyHistogram
	durations := []time.Duration{0, 1, 300, 300, 70000, time.Millisecond, time.Second, time.Hour}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	bs := s.Buckets()
	var sum int64
	for i, b := range bs {
		sum += b.Count
		if i > 0 && bs[i-1].Hi >= b.Hi {
			t.Fatalf("bounds not ascending: %v then %v", bs[i-1].Hi, b.Hi)
		}
	}
	if sum != s.Total || sum != int64(len(durations)) {
		t.Fatalf("bucket counts sum to %d, snapshot total %d, observed %d",
			sum, s.Total, len(durations))
	}
}
