package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, the output format of the
// benchmark harness. It is intentionally dependency-free: experiments
// print paper-shaped rows to stdout and into EXPERIMENTS.md.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// NumRows reports how many data rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header rule, and columns
// padded to their widest cell.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first),
// quoting cells that contain commas or quotes — the export format for
// plotting experiment output outside the repository.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.headers)
	for _, row := range t.rows {
		writeCSVRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points — one curve in one of the
// paper projects' figures (e.g. speedup vs cores).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Chart renders one or more series as an ASCII line chart plus the raw
// values, so benchmark output shows the figure shape directly in a
// terminal. All series must share their X grid; extra points are ignored.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a curve to the chart.
func (c *Chart) AddSeries(s *Series) { c.Series = append(c.Series, s) }

// String renders the chart: a value table (one column per series) followed
// by a coarse 20-row ASCII plot of each curve.
func (c *Chart) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", c.Title)
	if len(c.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	headers := []string{c.XLabel}
	for _, s := range c.Series {
		headers = append(headers, s.Name)
	}
	tab := NewTable("", headers...)
	n := len(c.Series[0].X)
	for _, s := range c.Series {
		if len(s.X) < n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		cells := []any{formatFloat(c.Series[0].X[i])}
		for _, s := range c.Series {
			cells = append(cells, s.Y[i])
		}
		tab.AddRow(cells...)
	}
	b.WriteString(tab.String())
	b.WriteString(c.plot(n))
	return b.String()
}

func (c *Chart) plot(n int) string {
	const rows, cols = 16, 60
	if n == 0 {
		return ""
	}
	minY, maxY := c.Series[0].Y[0], c.Series[0].Y[0]
	for _, s := range c.Series {
		for i := 0; i < n; i++ {
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	marks := "*o+x#@%&"
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for i := 0; i < n; i++ {
			x := 0
			if n > 1 {
				x = i * (cols - 1) / (n - 1)
			}
			y := int((s.Y[i] - minY) / (maxY - minY) * float64(rows-1))
			row := rows - 1 - y
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (top=%.4g bottom=%.4g)\n", c.YLabel, maxY, minY)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", cols+1) + "> " + c.XLabel + "\n")
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
