package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"parc751/internal/xrand"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", got)
	}
	// Sample variance of this classic data set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %g, want %g", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single-element summary wrong")
	}
	if s.Variance() != 0 || s.CI95() != 0 {
		t.Error("variance of single element must be 0")
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(500 * time.Millisecond)
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("mean = %g, want 1.0 second", got)
	}
}

// TestMergeEquivalence is the key property: merging partial summaries must
// be indistinguishable from a single sequential accumulation. This is what
// makes Summary a valid parallel reduction operand.
func TestMergeEquivalence(t *testing.T) {
	f := func(seed uint64, splitRaw uint8) bool {
		r := xrand.New(seed)
		n := 50 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		split := int(splitRaw) % n

		var whole Summary
		for _, x := range xs {
			whole.Add(x)
		}
		var a, b Summary
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6 &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a.Mean()
	a.Merge(&b)
	if a.Mean() != before || a.N() != 2 {
		t.Error("merging empty summary changed state")
	}
	b.Merge(&a)
	if b.N() != 2 || b.Mean() != before {
		t.Error("merging into empty summary lost state")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup = %g", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup with zero parallel should be +Inf")
	}
	if !math.IsNaN(Speedup(0, 0)) {
		t.Error("Speedup(0,0) should be NaN")
	}
	if got := Efficiency(16, 2, 8); got != 1 {
		t.Errorf("Efficiency = %g, want 1", got)
	}
	if !math.IsNaN(Efficiency(1, 1, 0)) {
		t.Error("Efficiency with p=0 should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 1); got != 50 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 0.5); got != 35 {
		t.Errorf("median = %g", got)
	}
	if got := Percentile(xs, 0.25); got != 20 {
		t.Errorf("p25 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty GeoMean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative input should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-longer-name", 12345.678)
	out := tab.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer-name") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "12346") {
		t.Errorf("large float misformatted: %s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	// title, header, rule, two data rows
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("unexpected line count %d: %q", len(lines), out)
	}
}

func TestTableNaNRendersDash(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(math.NaN())
	if !strings.Contains(tab.String(), "-") {
		t.Error("NaN should render as dash")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "name", "value")
	tab.AddRow("plain", 1.5)
	tab.AddRow("with,comma", `say "hi"`)
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), csv)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Errorf("comma cell not quoted: %q", lines[2])
	}
	if !strings.Contains(lines[2], `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", lines[2])
	}
}

func TestChartRendering(t *testing.T) {
	s1 := &Series{Name: "seq"}
	s2 := &Series{Name: "par"}
	for i := 1; i <= 8; i *= 2 {
		s1.Add(float64(i), 1)
		s2.Add(float64(i), float64(i))
	}
	ch := &Chart{Title: "Speedup", XLabel: "cores", YLabel: "S"}
	ch.AddSeries(s1)
	ch.AddSeries(s2)
	out := ch.String()
	for _, want := range []string{"== Speedup ==", "seq", "par", "cores", "top=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if !strings.Contains(ch.String(), "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestChartFlatLine(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(1, 5)
	s.Add(2, 5)
	ch := &Chart{Title: "flat", XLabel: "x", YLabel: "y"}
	ch.AddSeries(s)
	if out := ch.String(); !strings.Contains(out, "flat") {
		t.Errorf("flat chart failed: %s", out)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func BenchmarkSummaryMerge(b *testing.B) {
	var a, c Summary
	for i := 0; i < 1000; i++ {
		a.Add(float64(i))
		c.Add(float64(i) * 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := a
		tmp.Merge(&c)
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	var h LatencyHistogram
	if s := h.Snapshot(); s.Total != 0 || s.String() != "no observations" {
		t.Fatalf("empty snapshot: %v %q", s.Total, s.String())
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to zero
	h.Observe(3)            // bucket [2,4)
	h.Observe(100 * time.Millisecond)
	h.Observe(1 << 62) // clamped into the last bucket
	s := h.Snapshot()
	if s.Total != 5 {
		t.Fatalf("Total = %d", s.Total)
	}
	if s.Counts[0] != 2 {
		t.Fatalf("zero bucket = %d", s.Counts[0])
	}
	if s.Counts[2] != 1 {
		t.Fatalf("bucket [2,4) = %d", s.Counts[2])
	}
	if s.Counts[31] != 1 {
		t.Fatalf("overflow bucket = %d", s.Counts[31])
	}
	if q := s.Quantile(0); q <= 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := s.Quantile(1); q < 100*time.Millisecond {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if s.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestLatencyHistogramQuantileMonotone(t *testing.T) {
	var h LatencyHistogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	qs := []float64{0.1, 0.5, 0.9, 0.99, 1}
	prev := time.Duration(0)
	for _, q := range qs {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < %v", q, v, prev)
		}
		prev = v
	}
	if s.Quantile(0.5) > time.Millisecond {
		t.Fatalf("p50 = %v, want <= 1ms for 0..1ms data", s.Quantile(0.5))
	}
}
