package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two duration buckets tracked by
// LatencyHistogram: bucket i covers [2^(i-1), 2^i) nanoseconds, with
// bucket 0 holding sub-nanosecond (clamped) observations and the last
// bucket holding everything at or above 2^(latencyBuckets-2) ns (~2.3s).
const latencyBuckets = 32

// LatencyHistogram accumulates durations into logarithmic (power-of-two)
// buckets. All methods are safe for concurrent use; Observe is a single
// atomic increment, cheap enough for scheduler hot paths. The zero value
// is an empty histogram ready for use.
type LatencyHistogram struct {
	counts [latencyBuckets]atomic.Int64
}

// Observe folds one duration into the histogram. Negative durations are
// clamped to zero.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	h.counts[i].Add(1)
}

// Snapshot returns an immutable copy of the current bucket counts.
func (h *LatencyHistogram) Snapshot() LatencySnapshot {
	var s LatencySnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Total += s.Counts[i]
	}
	return s
}

// LatencySnapshot is a point-in-time copy of a LatencyHistogram.
type LatencySnapshot struct {
	Counts [latencyBuckets]int64
	Total  int64
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(int64(1) << uint(i))
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1):
// the upper edge of the bucket containing that rank. It returns 0 for an
// empty snapshot.
func (s LatencySnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			return bucketHi(i)
		}
	}
	return bucketHi(latencyBuckets - 1)
}

// Bucket is one non-empty histogram bucket in export form: Count
// observations at or below Hi (and above the previous bucket's Hi).
type Bucket struct {
	Hi    time.Duration `json:"hi_ns"`
	Count int64         `json:"count"`
}

// Buckets returns the non-empty buckets in ascending bound order — the
// compact form the serving layer's /statz endpoint emits, instead of the
// mostly-zero fixed-width Counts array.
func (s LatencySnapshot) Buckets() []Bucket {
	var out []Bucket
	for i, c := range s.Counts {
		if c != 0 {
			out = append(out, Bucket{Hi: bucketHi(i), Count: c})
		}
	}
	return out
}

// String renders the non-empty tail of the histogram as one line of
// "≤bound:count" pairs plus headline quantiles.
func (s LatencySnapshot) String() string {
	if s.Total == 0 {
		return "no observations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d p50≤%v p90≤%v p99≤%v | ", s.Total,
		s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
	first := true
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "≤%v:%d", bucketHi(i), c)
	}
	return b.String()
}
