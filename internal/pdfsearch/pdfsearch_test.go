package pdfsearch

import (
	"sync"
	"testing"
	"time"

	"parc751/internal/ptask"
	"parc751/internal/workload"
)

func newRT(t *testing.T, workers int) *ptask.Runtime {
	t.Helper()
	rt := ptask.NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestSequentialFindsPlantedHits(t *testing.T) {
	spec := workload.DefaultDocSpec(3)
	docs, hits := workload.GenDocs(spec)
	got := Sequential(docs, spec.Needle)
	if len(got) != hits {
		t.Fatalf("found %d, planted %d", len(got), hits)
	}
}

func TestAllGranularitiesMatchSequential(t *testing.T) {
	rt := newRT(t, 4)
	spec := workload.DefaultDocSpec(5)
	docs, _ := workload.GenDocs(spec)
	want := Sequential(docs, spec.Needle)
	for _, g := range []Granularity{PerFile, PerPage, Hybrid} {
		got := Search(rt, docs, spec.Needle, Options{Granularity: g})
		if len(got) != len(want) {
			t.Fatalf("%v: %d hits, want %d", g, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: hit %d = %+v, want %+v (ordering broken)", g, i, got[i], want[i])
			}
		}
	}
}

func TestHybridPagesPerTask(t *testing.T) {
	rt := newRT(t, 2)
	spec := workload.DefaultDocSpec(7)
	docs, _ := workload.GenDocs(spec)
	want := Sequential(docs, spec.Needle)
	for _, run := range []int{1, 4, 64, 1000} {
		got := Search(rt, docs, spec.Needle, Options{Granularity: Hybrid, PagesPerTask: run})
		if len(got) != len(want) {
			t.Fatalf("run=%d: %d hits, want %d", run, len(got), len(want))
		}
	}
}

func TestUnitCounts(t *testing.T) {
	docs := []*workload.Document{
		{Name: "a", Pages: make([]string, 10)},
		{Name: "b", Pages: make([]string, 25)},
	}
	if n := UnitCount(docs, PerFile, 0); n != 2 {
		t.Errorf("per-file units = %d", n)
	}
	if n := UnitCount(docs, PerPage, 0); n != 35 {
		t.Errorf("per-page units = %d", n)
	}
	// ceil(10/16) + ceil(25/16) = 1 + 2.
	if n := UnitCount(docs, Hybrid, 16); n != 3 {
		t.Errorf("hybrid units = %d", n)
	}
	if n := UnitCount(docs, Granularity(99), 0); n != 0 {
		t.Errorf("unknown granularity units = %d", n)
	}
}

func TestGranularityString(t *testing.T) {
	for g, want := range map[Granularity]string{
		PerFile: "per-file", PerPage: "per-page", Hybrid: "hybrid",
		Granularity(42): "unknown",
	} {
		if g.String() != want {
			t.Errorf("%d.String() = %q", g, g.String())
		}
	}
}

func TestStreamingHits(t *testing.T) {
	rt := newRT(t, 4)
	spec := workload.DefaultDocSpec(9)
	docs, hits := workload.GenDocs(spec)
	var mu sync.Mutex
	streamed := 0
	Search(rt, docs, spec.Needle, Options{
		Granularity: PerPage,
		OnHit: func(h Hit) {
			mu.Lock()
			streamed++
			mu.Unlock()
		},
	})
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := streamed
		mu.Unlock()
		if n == hits {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("streamed %d of %d", n, hits)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSkewedDocsStillCorrect(t *testing.T) {
	// One giant document among many small ones — the case where per-file
	// granularity has a straggler but must still be correct.
	rt := newRT(t, 4)
	spec := workload.DocSpec{Seed: 21, NumDocs: 20, MinPages: 2, MaxPages: 4,
		WordsPage: 40, NeedleRate: 0.2, Needle: "pdfNEEDLE"}
	docs, _ := workload.GenDocs(spec)
	bigSpec := workload.DocSpec{Seed: 22, NumDocs: 1, MinPages: 400, MaxPages: 400,
		WordsPage: 40, NeedleRate: 0.2, Needle: "pdfNEEDLE"}
	big, _ := workload.GenDocs(bigSpec)
	docs = append(docs, big...)
	want := Sequential(docs, spec.Needle)
	for _, g := range []Granularity{PerFile, PerPage, Hybrid} {
		got := Search(rt, docs, spec.Needle, Options{Granularity: g})
		if len(got) != len(want) {
			t.Fatalf("%v: %d hits, want %d", g, len(got), len(want))
		}
	}
}

func TestEmptyCorpus(t *testing.T) {
	rt := newRT(t, 2)
	if got := Search(rt, nil, "x", Options{Granularity: PerPage}); len(got) != 0 {
		t.Fatal("hits in empty corpus")
	}
}

func TestUnknownGranularityPanics(t *testing.T) {
	rt := newRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown granularity did not panic")
		}
	}()
	Search(rt, nil, "x", Options{Granularity: Granularity(42)})
}

func BenchmarkPerFile(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	docs, _ := workload.GenDocs(workload.DefaultDocSpec(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(rt, docs, "pdfNEEDLE", Options{Granularity: PerFile})
	}
}

func BenchmarkPerPage(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	docs, _ := workload.GenDocs(workload.DefaultDocSpec(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(rt, docs, "pdfNEEDLE", Options{Granularity: PerPage})
	}
}

func BenchmarkHybrid(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	docs, _ := workload.GenDocs(workload.DefaultDocSpec(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(rt, docs, "pdfNEEDLE", Options{Granularity: Hybrid, PagesPerTask: 16})
	}
}
