// Package pdfsearch is project 7 of the reproduced paper: searching a set
// of paged documents ("PDF files stored locally on a tablet or
// laptop/desktop") for a query, "investigating various granularity and
// parameters to the parallelisation process (for example, searching per
// page, per file, number of threads, etc)". Real PDFs are replaced by the
// synthetic paged documents from internal/workload — the granularity
// question the students studied is a property of work distribution, not
// of the file format.
package pdfsearch

import (
	"strings"

	"parc751/internal/ptask"
	"parc751/internal/workload"
)

// Granularity selects the unit of parallel work.
type Granularity int

// The decompositions the project compares.
const (
	// PerFile spawns one task per document: coarse, low overhead, but a
	// single huge document serialises the tail.
	PerFile Granularity = iota
	// PerPage spawns one task per page: maximal balance, maximal task
	// overhead.
	PerPage
	// Hybrid spawns one task per fixed-size run of pages within each
	// document: the middle ground.
	Hybrid
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case PerFile:
		return "per-file"
	case PerPage:
		return "per-page"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Hit is one matching page.
type Hit struct {
	Doc  string
	Page int // 1-based
}

// Sequential scans every page of every document in order.
func Sequential(docs []*workload.Document, query string) []Hit {
	var out []Hit
	for _, d := range docs {
		for p, page := range d.Pages {
			if strings.Contains(page, query) {
				out = append(out, Hit{Doc: d.Name, Page: p + 1})
			}
		}
	}
	return out
}

// Options configures a parallel search.
type Options struct {
	Granularity Granularity
	// PagesPerTask is the run length for Hybrid (default 16).
	PagesPerTask int
	// OnHit streams hits as found (event-loop delivered when the runtime
	// has one), the "intermittent updates" feature of the project.
	OnHit func(Hit)
}

// Search scans the documents in parallel under the chosen granularity.
// Results are returned in deterministic (document, page) order.
func Search(rt *ptask.Runtime, docs []*workload.Document, query string, opt Options) []Hit {
	switch opt.Granularity {
	case PerFile:
		return searchUnits(rt, docs, query, opt, wholeDocUnits(docs))
	case PerPage:
		return searchUnits(rt, docs, query, opt, pageUnits(docs, 1))
	case Hybrid:
		run := opt.PagesPerTask
		if run <= 0 {
			run = 16
		}
		return searchUnits(rt, docs, query, opt, pageUnits(docs, run))
	default:
		panic("pdfsearch: unknown granularity")
	}
}

// unit is a contiguous page range of one document. Units are always
// generated in (document, page) order, which makes the flattened result
// ordering deterministic.
type unit struct {
	doc    int
	lo, hi int // page range [lo, hi)
}

func wholeDocUnits(docs []*workload.Document) []unit {
	units := make([]unit, len(docs))
	for i, d := range docs {
		units[i] = unit{doc: i, lo: 0, hi: len(d.Pages)}
	}
	return units
}

func pageUnits(docs []*workload.Document, run int) []unit {
	var units []unit
	for i, d := range docs {
		for lo := 0; lo < len(d.Pages); lo += run {
			hi := lo + run
			if hi > len(d.Pages) {
				hi = len(d.Pages)
			}
			units = append(units, unit{doc: i, lo: lo, hi: hi})
		}
	}
	return units
}

func searchUnits(rt *ptask.Runtime, docs []*workload.Document, query string, opt Options, units []unit) []Hit {
	multi := ptask.RunMulti(rt, len(units), func(i int) ([]Hit, error) {
		u := units[i]
		d := docs[u.doc]
		var out []Hit
		for p := u.lo; p < u.hi; p++ {
			if strings.Contains(d.Pages[p], query) {
				out = append(out, Hit{Doc: d.Name, Page: p + 1})
			}
		}
		return out, nil
	})
	if opt.OnHit != nil {
		multi.NotifyEach(func(_ int, hits []Hit, err error) {
			for _, h := range hits {
				opt.OnHit(h)
			}
		})
	}
	perUnit, _ := multi.Results()
	// Units were generated in (doc, page) order, and Results preserves
	// element order, so flattening is already deterministic.
	var out []Hit
	for _, hs := range perUnit {
		out = append(out, hs...)
	}
	return out
}

// UnitCount reports how many tasks a granularity would spawn for docs —
// the overhead axis of the granularity study.
func UnitCount(docs []*workload.Document, g Granularity, pagesPerTask int) int {
	switch g {
	case PerFile:
		return len(docs)
	case PerPage:
		return len(pageUnits(docs, 1))
	case Hybrid:
		if pagesPerTask <= 0 {
			pagesPerTask = 16
		}
		return len(pageUnits(docs, pagesPerTask))
	default:
		return 0
	}
}
