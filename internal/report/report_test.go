package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() []Finding {
	return []Finding{
		{Tool: "parcvet", Rule: "sharedwrite", Pos: "a/b.go:10:3", Severity: Error, Detail: "write to shared x"},
		{Tool: "parcaudit", Rule: "layout", Pos: "cmd", Severity: Warning, Detail: "missing README"},
		{Tool: "parcpar", Rule: "parallelizable", Pos: "k/m.go:4:2", Severity: Warning, Detail: "loop is parallelizable"},
	}
}

// TestJSONGolden pins the exact JSON shape shared by parcvet, parcaudit,
// and parcpar: an indented array, severities as names, fields in struct
// order, and input ordering preserved (producers sort by position before
// rendering; Render must not re-order).
func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sample(), true); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "tool": "parcvet",
    "rule": "sharedwrite",
    "pos": "a/b.go:10:3",
    "severity": "error",
    "detail": "write to shared x"
  },
  {
    "tool": "parcaudit",
    "rule": "layout",
    "pos": "cmd",
    "severity": "warning",
    "detail": "missing README"
  },
  {
    "tool": "parcpar",
    "rule": "parallelizable",
    "pos": "k/m.go:4:2",
    "severity": "warning",
    "detail": "loop is parallelizable"
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("JSON output drifted from the golden form.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONEmptyIsArray guards the "always an array, never null" contract
// machine consumers (CI artifact scripts) rely on.
func TestJSONEmptyIsArray(t *testing.T) {
	for _, fs := range [][]Finding{nil, {}} {
		var buf bytes.Buffer
		if err := Render(&buf, fs, true); err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(buf.String()); got != "[]" {
			t.Errorf("Render(%v, json) = %q, want []", fs, got)
		}
	}
}

// TestJSONRoundTrip checks severities survive encode/decode by name, so
// findings artifacts can be re-read by tooling.
func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := Render(&buf, in, true); err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: got %d findings, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("finding %d changed in round trip: got %+v, want %+v", i, out[i], in[i])
		}
	}
	var sev Severity
	if err := sev.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("unknown severity name should be rejected")
	}
}

// TestErrorsOnlyFiltering is the behavior behind every CLI's -errors-only
// flag: Errors keeps error severity, drops warnings, and preserves order.
func TestErrorsOnlyFiltering(t *testing.T) {
	fs := []Finding{
		{Rule: "a", Severity: Error},
		{Rule: "b", Severity: Warning},
		{Rule: "c", Severity: Error},
	}
	got := Errors(fs)
	if len(got) != 2 || got[0].Rule != "a" || got[1].Rule != "c" {
		t.Errorf("Errors(%v) = %v, want the two error findings in order", fs, got)
	}
	if got := Errors(nil); len(got) != 0 {
		t.Errorf("Errors(nil) = %v, want empty", got)
	}
	if got := Errors([]Finding{{Severity: Warning}}); len(got) != 0 {
		t.Errorf("Errors(warnings only) = %v, want empty", got)
	}
}

// TestExitCodeContract pins the 0/1 mapping (2 is reserved for "could
// not run" and produced by the CLIs directly, never by ExitCode).
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name string
		fs   []Finding
		want int
	}{
		{"no findings", nil, 0},
		{"warnings only", []Finding{{Severity: Warning}, {Severity: Warning}}, 0},
		{"one error", []Finding{{Severity: Warning}, {Severity: Error}}, 1},
		{"all errors", []Finding{{Severity: Error}}, 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.fs); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestTextRendering covers the one-line grep form and the summary line.
func TestTextRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sample(), false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 3 finding lines + summary, got %d: %q", len(lines), out)
	}
	if lines[0] != "a/b.go:10:3: error: [sharedwrite] write to shared x" {
		t.Errorf("finding line form drifted: %q", lines[0])
	}
	if lines[3] != "3 finding(s), 1 error(s)" {
		t.Errorf("summary line drifted: %q", lines[3])
	}

	buf.Reset()
	if err := Render(&buf, nil, false); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "0 finding(s), 0 error(s)" {
		t.Errorf("empty text render = %q", got)
	}
}
