package report

import (
	"errors"
	"strings"
	"testing"
)

// failWriter fails after n successful writes — the disk-full / closed-pipe
// shape the CLIs hit when their output is redirected.
type failWriter struct {
	n    int
	seen int
}

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	w.seen++
	if w.seen > w.n {
		return 0, errSink
	}
	return len(p), nil
}

func sampleFindings() []Finding {
	return []Finding{
		{Tool: "parcvet", Rule: "locks", Pos: "a.go:1:1", Severity: Error, Detail: "copied mutex"},
		{Tool: "parcaudit", Rule: "readme", Pos: "README.md", Severity: Warning, Detail: "missing section"},
	}
}

// TestRenderJSONWriteError: a failing writer must surface as Render's
// error on the JSON path — a CLI that swallowed it would exit 0 with a
// truncated report.
func TestRenderJSONWriteError(t *testing.T) {
	err := Render(&failWriter{n: 0}, sampleFindings(), true)
	if !errors.Is(err, errSink) {
		t.Fatalf("JSON render error = %v, want the writer's", err)
	}
	// The empty-slice normalization path writes too and must also fail.
	if err := Render(&failWriter{n: 0}, nil, true); !errors.Is(err, errSink) {
		t.Fatalf("empty JSON render error = %v, want the writer's", err)
	}
}

// TestRenderTextWriteError covers both text-path writes: the per-finding
// lines and the trailing summary line.
func TestRenderTextWriteError(t *testing.T) {
	if err := Render(&failWriter{n: 0}, sampleFindings(), false); !errors.Is(err, errSink) {
		t.Fatalf("first finding line: error = %v, want the writer's", err)
	}
	// Allow the finding lines through, fail on the summary.
	fs := sampleFindings()
	if err := Render(&failWriter{n: len(fs)}, fs, false); !errors.Is(err, errSink) {
		t.Fatalf("summary line: error = %v, want the writer's", err)
	}
}

// TestRenderTextStopsAtFirstError: after a write fails, Render must not
// keep hammering the broken writer with the remaining findings.
func TestRenderTextStopsAtFirstError(t *testing.T) {
	w := &failWriter{n: 1}
	fs := sampleFindings()
	if err := Render(w, fs, false); !errors.Is(err, errSink) {
		t.Fatalf("error = %v", err)
	}
	// One successful write, one failing write, nothing after.
	if w.seen != 2 {
		t.Fatalf("writer saw %d writes after first failure, want 2", w.seen)
	}
}

// TestSeverityUnmarshalRejectsUnknown: the JSON reader half of the shared
// vocabulary must reject severities outside it.
func TestSeverityUnmarshalRejectsUnknown(t *testing.T) {
	var s Severity
	if err := s.UnmarshalJSON([]byte(`"fatal"`)); err == nil ||
		!strings.Contains(err.Error(), "unknown severity") {
		t.Fatalf("unknown severity accepted: %v", err)
	}
	if err := s.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Fatal("non-string severity accepted")
	}
}
