// Package report is the shared finding vocabulary of the course tooling:
// parcaudit (repository hygiene, §IV-A) and parcvet (concurrency misuse,
// §III/§IV-C) both render their results through it, so the two checkers
// compose into one course report with consistent severities, text output,
// JSON output, and exit codes.
//
// Conventions (shared by both CLIs):
//
//	exit 0 — ran, no error-severity findings
//	exit 1 — ran, at least one error-severity finding
//	exit 2 — could not run (bad flags, unreadable tree, load failure)
package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// Severity ranks a finding.
type Severity int

// Severity levels. Error-severity findings fail CI; warnings inform.
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name, not its rank.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	default:
		return fmt.Errorf("report: unknown severity %q", name)
	}
	return nil
}

// Finding is one diagnostic from any course checker.
type Finding struct {
	// Tool is the checker that produced the finding ("parcaudit",
	// "parcvet").
	Tool string `json:"tool"`
	// Rule is the violated rule or analyzer name.
	Rule string `json:"rule"`
	// Pos locates the finding: "file:line:col" for source diagnostics,
	// a repo-relative path for tree diagnostics.
	Pos      string   `json:"pos"`
	Severity Severity `json:"severity"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

// String renders the finding in the grep-friendly one-line form both CLIs
// print.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", f.Pos, f.Severity, f.Rule, f.Detail)
}

// Errors filters findings to severity Error.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

// ExitCode maps findings to the shared CLI exit convention.
func ExitCode(fs []Finding) int {
	if len(Errors(fs)) > 0 {
		return 1
	}
	return 0
}

// Render writes the findings to w: an indented JSON array when jsonOut is
// set (machine consumption, always an array — never null), otherwise one
// line per finding followed by a summary line.
func Render(w io.Writer, fs []Finding, jsonOut bool) error {
	if jsonOut {
		if fs == nil {
			fs = []Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(fs)
	}
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d finding(s), %d error(s)\n", len(fs), len(Errors(fs)))
	return err
}
