package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The ratchet policy (EXPERIMENTS.md): a hot path regresses when its
// ns/op exceeds the committed baseline by more than TolerancePct AND by
// more than EpsilonNs. The relative bound is the contract; the absolute
// epsilon keeps sub-nanosecond jitter on very fast paths (a 3 ns barrier
// word bump is 10% of 30 ns) from flapping the build. Allocations
// ratchet separately and absolutely: any increase of at least
// AllocSlack objects per op fails, because the zero-allocation paths
// must stay at zero — there is no "10% of zero".
const (
	DefaultTolerancePct = 10.0
	DefaultEpsilonNs    = 20.0
	AllocSlack          = 0.5
)

// Regression is one failed ratchet check.
type Regression struct {
	Name   string
	Detail string
}

// Compare applies the ratchet: every baseline hot path must still exist
// and must not regress in ns/op (beyond tolPct AND epsNs) or allocs/op
// (beyond AllocSlack). Paths new in cur are allowed — they become part
// of the baseline when the report is committed.
func Compare(base, cur Report, tolPct, epsNs float64) []Regression {
	if tolPct <= 0 {
		tolPct = DefaultTolerancePct
	}
	if epsNs <= 0 {
		epsNs = DefaultEpsilonNs
	}
	curByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	var regs []Regression
	for _, b := range base.Results {
		c, ok := curByName[b.Name]
		if !ok {
			regs = append(regs, Regression{b.Name,
				"hot path present in the baseline but missing from this run (coverage regression)"})
			continue
		}
		if over := c.NsPerOp - b.NsPerOp; over > epsNs && c.NsPerOp > b.NsPerOp*(1+tolPct/100) {
			regs = append(regs, Regression{b.Name, fmt.Sprintf(
				"ns/op %.1f vs baseline %.1f (+%.1f%%, tolerance %.0f%%)",
				c.NsPerOp, b.NsPerOp, 100*over/b.NsPerOp, tolPct)})
		}
		if c.AllocsPerOp > b.AllocsPerOp+AllocSlack {
			regs = append(regs, Regression{b.Name, fmt.Sprintf(
				"allocs/op %.2f vs baseline %.2f (allocation budget is a hard ratchet)",
				c.AllocsPerOp, b.AllocsPerOp)})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// Delta is one hot path's baseline-vs-current row — the machine-readable
// form of what Compare decides, kept even for paths that pass so a CI
// artifact shows the whole picture, not just the failures.
type Delta struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op,omitempty"`
	CurNsPerOp  float64 `json:"cur_ns_per_op,omitempty"`
	// NsDeltaPct is (cur-base)/base in percent; negative is an improvement.
	NsDeltaPct float64 `json:"ns_delta_pct,omitempty"`
	BaseAllocs float64 `json:"base_allocs_per_op,omitempty"`
	CurAllocs  float64 `json:"cur_allocs_per_op,omitempty"`
	AllocDelta float64 `json:"alloc_delta,omitempty"`
	// Status is "ok", "regressed" (the ratchet would fail it), "new"
	// (no baseline row), or "missing" (baseline row with no current run).
	Status string `json:"status"`
}

// DeltaReport is the per-path comparison artifact CI uploads alongside
// the ratchet verdict.
type DeltaReport struct {
	Schema   string  `json:"schema"`
	Baseline string  `json:"baseline"`
	TolPct   float64 `json:"tolerance_pct"`
	EpsNs    float64 `json:"epsilon_ns"`
	Deltas   []Delta `json:"deltas"`
}

// DeltaSchemaV1 versions the delta-report artifact format.
const DeltaSchemaV1 = "parc751/perfbench-delta/v1"

// BuildDelta computes the per-path delta rows between a baseline and a
// current run, applying the same regression predicate as Compare.
func BuildDelta(baselineName string, base, cur Report, tolPct, epsNs float64) DeltaReport {
	if tolPct <= 0 {
		tolPct = DefaultTolerancePct
	}
	if epsNs <= 0 {
		epsNs = DefaultEpsilonNs
	}
	rep := DeltaReport{Schema: DeltaSchemaV1, Baseline: baselineName, TolPct: tolPct, EpsNs: epsNs}
	curByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	seen := make(map[string]bool, len(base.Results))
	for _, b := range base.Results {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{
				Name: b.Name, BaseNsPerOp: b.NsPerOp, BaseAllocs: b.AllocsPerOp,
				Status: "missing",
			})
			continue
		}
		d := Delta{
			Name:        b.Name,
			BaseNsPerOp: b.NsPerOp,
			CurNsPerOp:  c.NsPerOp,
			BaseAllocs:  b.AllocsPerOp,
			CurAllocs:   c.AllocsPerOp,
			AllocDelta:  c.AllocsPerOp - b.AllocsPerOp,
			Status:      "ok",
		}
		if b.NsPerOp > 0 {
			d.NsDeltaPct = 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		nsRegressed := c.NsPerOp-b.NsPerOp > epsNs && c.NsPerOp > b.NsPerOp*(1+tolPct/100)
		if nsRegressed || c.AllocsPerOp > b.AllocsPerOp+AllocSlack {
			d.Status = "regressed"
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, c := range cur.Results {
		if !seen[c.Name] {
			rep.Deltas = append(rep.Deltas, Delta{
				Name: c.Name, CurNsPerOp: c.NsPerOp, CurAllocs: c.AllocsPerOp,
				Status: "new",
			})
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	return rep
}

// WriteDelta marshals the delta report to path (same conventions as
// WriteReport).
func WriteDelta(path string, rep DeltaReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteReport marshals the report to path (pretty-printed, trailing
// newline — the file is committed and diffed by humans).
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and validates a committed report.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if rep.Schema != SchemaV1 {
		return rep, fmt.Errorf("perfbench: %s: unknown schema %q (want %q)", path, rep.Schema, SchemaV1)
	}
	return rep, nil
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestBaseline finds the highest-numbered BENCH_<n>.json in dir —
// the last committed baseline, by the stacked-PR numbering convention.
// exclude (may be "") names a file to skip, so a run regenerating
// BENCH_7.json ratchets against BENCH_6.json rather than itself.
// Returns "" when no baseline exists (first ever report).
func LatestBaseline(dir, exclude string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil || e.Name() == filepath.Base(exclude) {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = filepath.Join(dir, e.Name()), n
	}
	return best, nil
}

// FormatRegressions renders the verdict block the CLI prints.
func FormatRegressions(regs []Regression) string {
	if len(regs) == 0 {
		return "perf ratchet: all hot paths within tolerance"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf ratchet: %d hot path(s) regressed:\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(&sb, "  %-24s %s\n", r.Name, r.Detail)
	}
	return strings.TrimRight(sb.String(), "\n")
}
