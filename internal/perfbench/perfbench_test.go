package perfbench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMeasureCountsOpsAndAllocs(t *testing.T) {
	var calls int
	res := Measure(Spec{Name: "alloc1", Bench: func(n int) {
		calls += n
		for i := 0; i < n; i++ {
			s := make([]byte, 64)
			sink = s
		}
	}}, Options{MinTime: 2 * time.Millisecond, Repeats: 2})
	if res.Ops < 1 || calls < res.Ops {
		t.Fatalf("ops accounting broken: ops=%d calls=%d", res.Ops, calls)
	}
	if res.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v, want > 0", res.NsPerOp)
	}
	// One make per op; tolerate ambient noise but pin the order of
	// magnitude (a missed ReadMemStats pairing would report 0 or huge).
	if res.AllocsPerOp < 0.9 || res.AllocsPerOp > 3 {
		t.Fatalf("AllocsPerOp = %v, want ~1", res.AllocsPerOp)
	}
}

var sink any // defeats escape analysis in the harness test

func TestMeasureZeroAllocPathReportsZero(t *testing.T) {
	x := 0
	res := Measure(Spec{Name: "incr", Bench: func(n int) {
		for i := 0; i < n; i++ {
			x++
		}
	}}, Options{MinTime: 2 * time.Millisecond, Repeats: 2})
	_ = x
	if res.AllocsPerOp > 0.01 {
		t.Fatalf("AllocsPerOp = %v for a pure-register loop, want 0", res.AllocsPerOp)
	}
}

func rep(results ...Result) Report {
	return Report{Schema: SchemaV1, Results: results}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := rep(
		Result{Name: "fast", NsPerOp: 30, AllocsPerOp: 0},
		Result{Name: "slow", NsPerOp: 10_000, AllocsPerOp: 2},
		Result{Name: "gone", NsPerOp: 100, AllocsPerOp: 0},
	)
	cur := rep(
		// +10% of 30ns = 3ns: inside the absolute epsilon, must pass.
		Result{Name: "fast", NsPerOp: 36, AllocsPerOp: 0},
		// +25% and far beyond epsilon: must fail. Allocs also grew.
		Result{Name: "slow", NsPerOp: 12_500, AllocsPerOp: 3},
		// "gone" missing: coverage regression.
		Result{Name: "new", NsPerOp: 5, AllocsPerOp: 0},
	)
	regs := Compare(base, cur, 10, 20)
	var names []string
	for _, r := range regs {
		names = append(names, r.Name)
	}
	if got := strings.Join(names, ","); got != "gone,slow,slow" {
		t.Fatalf("regressions = %v, want [gone slow slow]", names)
	}
}

func TestCompareAllocRatchetIsAbsolute(t *testing.T) {
	base := rep(Result{Name: "zero", NsPerOp: 50, AllocsPerOp: 0})
	cur := rep(Result{Name: "zero", NsPerOp: 50, AllocsPerOp: 1})
	if regs := Compare(base, cur, 10, 20); len(regs) != 1 {
		t.Fatalf("0→1 allocs/op must fail the ratchet, got %v", regs)
	}
	cur = rep(Result{Name: "zero", NsPerOp: 50, AllocsPerOp: 0.2})
	if regs := Compare(base, cur, 10, 20); len(regs) != 0 {
		t.Fatalf("sub-slack alloc noise must pass, got %v", regs)
	}
}

func TestReportRoundTripAndBaselineDiscovery(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_abc.json", "OTHER_3.json"} {
		if err := WriteReport(filepath.Join(dir, name), rep(Result{Name: "x", NsPerOp: 1})); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir, "")
	if err != nil || filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("LatestBaseline = %q, %v; want BENCH_10.json", got, err)
	}
	// Numeric, not lexicographic: 10 beats 2. Excluding the latest falls
	// back to the previous one.
	got, err = LatestBaseline(dir, filepath.Join(dir, "BENCH_10.json"))
	if err != nil || filepath.Base(got) != "BENCH_2.json" {
		t.Fatalf("LatestBaseline(exclude latest) = %q, %v; want BENCH_2.json", got, err)
	}
	loaded, err := LoadReport(filepath.Join(dir, "BENCH_10.json"))
	if err != nil || len(loaded.Results) != 1 || loaded.Results[0].Name != "x" {
		t.Fatalf("LoadReport round trip: %+v, %v", loaded, err)
	}
	// Schema guard.
	bad := filepath.Join(dir, "BENCH_11.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("LoadReport accepted an unknown schema")
	}
}

// TestSuiteSmoke runs every canonical hot path once through the real
// fixtures with a tiny window — the specs must execute, not how fast.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke spins up pools and a server")
	}
	specs, cleanup := Suite()
	defer cleanup()
	if len(specs) < 10 {
		t.Fatalf("suite has %d hot paths, the ratchet contract requires >= 10", len(specs))
	}
	rep := RunSuite(specs, Options{MinTime: time.Millisecond, Repeats: 1}, nil)
	seen := map[string]bool{}
	for _, r := range rep.Results {
		if seen[r.Name] {
			t.Fatalf("duplicate hot path %q", r.Name)
		}
		seen[r.Name] = true
		if r.NsPerOp <= 0 || r.Ops < 1 {
			t.Fatalf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for _, want := range []string{"core_submit", "ptask_result", "pyjama_for_static", "barrier_t8", "parcserve_enqueue"} {
		if !seen[want] {
			t.Fatalf("canonical hot path %q missing from suite", want)
		}
	}
}
