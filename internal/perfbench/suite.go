package perfbench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"parc751/internal/core"
	"parc751/internal/parcserve"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

// Suite returns the canonical hot-path specs and a cleanup that tears
// down the long-lived fixtures (pools, runtimes, the in-process server).
// The set and the names are the contract with committed BENCH_<n>.json
// baselines: renaming or dropping one fails the ratchet's coverage check.
func Suite() (specs []Spec, cleanup func()) {
	// core_submit: one Submit→run round trip on a live pool, the
	// scheduler's innermost cycle (envelope freelist, deque push, wake).
	pool := core.NewPool(4)
	submitDone := make(chan struct{}, 1)
	submitFn := func() { submitDone <- struct{}{} }
	specs = append(specs, Spec{Name: "core_submit", Bench: func(n int) {
		for i := 0; i < n; i++ {
			pool.Submit(submitFn)
			<-submitDone
		}
	}})

	// ptask_result: spawn, join, recycle — the Parallel Task API's
	// fork/join cycle including the pooled future envelope.
	rt := ptask.NewRuntime(4)
	taskBody := func() (int, error) { return 42, nil }
	specs = append(specs, Spec{Name: "ptask_result", Bench: func(n int) {
		for i := 0; i < n; i++ {
			t := ptask.Run(rt, taskBody)
			if _, err := t.Result(); err != nil {
				panic(err)
			}
			t.Release()
		}
	}})

	// pyjama_for_static: one block-decomposed worksharing loop plus its
	// implicit barrier. The static fast path registers no construct slots
	// (staticFastChunk is pure arithmetic), so the whole measurement can
	// run inside ONE region: region spawn amortizes to ~n^-1 and the path
	// ratchets at exactly zero allocations instead of carrying the old
	// 0.09 of per-region overhead.
	specs = append(specs, Spec{Name: "pyjama_for_static", Bench: func(n int) {
		pyjama.Parallel(4, func(tc *pyjama.TC) {
			sink := 0
			body := func(i int) { sink += i }
			for k := 0; k < n; k++ {
				tc.For(loopN, pyjama.Static(0), body)
			}
			_ = sink
		})
	}})

	// pyjama_for_<schedule>: one worksharing loop (1024 iterations over 4
	// threads) plus its implicit barrier. The claim-based schedules
	// register a construct slot per loop, so regions are recycled every
	// regionOps loops: region spawn cost is amortized while the
	// worksharing slot table stays bounded — and the region join returns
	// each loopState to the pool, which is what keeps the steady state at
	// one allocation or less per construct.
	for _, sc := range []struct {
		name  string
		sched pyjama.Schedule
	}{
		{"pyjama_for_dynamic", pyjama.Dynamic(64)},
		{"pyjama_for_guided", pyjama.Guided(0)},
		{"pyjama_for_auto", pyjama.Auto()},
	} {
		sched := sc.sched
		specs = append(specs, Spec{Name: sc.name, Bench: func(n int) {
			forOps(n, func(tc *pyjama.TC, ops int) {
				sink := 0
				body := func(i int) { sink += i }
				for k := 0; k < ops; k++ {
					tc.For(loopN, sched, body)
				}
				_ = sink
			})
		}})
	}

	// pyjama_for_reduce: the loop plus the serial-thread combine and its
	// publishing barrier.
	specs = append(specs, Spec{Name: "pyjama_for_reduce", Bench: func(n int) {
		forOps(n, func(tc *pyjama.TC, ops int) {
			r := reduction.Sum[int]()
			for k := 0; k < ops; k++ {
				pyjama.ForReduce(tc, loopN, pyjama.Static(0), r,
					func(i, acc int) int { return acc + i })
			}
		})
	}})

	// barrier_t<N>: one full barrier generation for a team of N — the
	// combining tree plus the precise-parking waiter protocol.
	for _, parties := range []int{2, 4, 8} {
		parties := parties
		specs = append(specs, Spec{Name: fmt.Sprintf("barrier_t%d", parties), Bench: func(n int) {
			b := core.NewBarrier(parties)
			var wg sync.WaitGroup
			for id := 0; id < parties; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < n; k++ {
						b.AwaitAs(id)
					}
				}(id)
			}
			wg.Wait()
		}})
	}

	// parcserve_enqueue: one POST /jobs/sort through the in-process
	// server — JSON decode, admission, dispatch onto the runtime, a small
	// sort, and the response write. BatchMax 1 so a lone sequential
	// client is not serialized on the coalescing timer.
	srv := parcserve.NewServer(parcserve.Config{Workers: 4, BatchMax: 1})
	payload := []byte(`{"n":64,"seed":751}`)
	specs = append(specs, Spec{Name: "parcserve_enqueue", Bench: func(n int) {
		for i := 0; i < n; i++ {
			req := httptest.NewRequest("POST", "/jobs/sort", bytes.NewReader(payload))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("parcserve_enqueue: status %d: %s", rec.Code, strings.TrimSpace(rec.Body.String())))
			}
		}
	}})

	// parcserve_roundtrip: end-to-end serving throughput — concurrent
	// clients POSTing small sorts over real HTTP connections into a
	// batching server (decode, admission, coalesce, execute, encode).
	// Unlike parcserve_enqueue (one sequential in-process request, the
	// latency view), this is the jobs/sec view: 8 open connections keep
	// the batcher and admission path genuinely contended.
	rtSrv := parcserve.NewServer(parcserve.Config{
		Workers:       4,
		MaxConcurrent: 8,
		BatchMax:      8,
		BatchDelay:    500 * time.Microsecond,
	})
	ts := httptest.NewServer(rtSrv)
	rtClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: roundtripClients}}
	rtPayload := []byte(`{"n":256,"seed":751}`)
	rtURL := ts.URL + "/jobs/sort"
	specs = append(specs, Spec{Name: "parcserve_roundtrip", Throughput: true, Bench: func(n int) {
		var wg sync.WaitGroup
		for c := 0; c < roundtripClients; c++ {
			share := n / roundtripClients
			if c < n%roundtripClients {
				share++
			}
			if share == 0 {
				continue
			}
			wg.Add(1)
			go func(share int) {
				defer wg.Done()
				for i := 0; i < share; i++ {
					resp, err := rtClient.Post(rtURL, "application/json", bytes.NewReader(rtPayload))
					if err != nil {
						panic(fmt.Sprintf("parcserve_roundtrip: %v", err))
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode != 200 {
						panic(fmt.Sprintf("parcserve_roundtrip: status %d", resp.StatusCode))
					}
				}
			}(share)
		}
		wg.Wait()
	}})

	cleanup = func() {
		pool.Shutdown()
		rt.Shutdown()
		ts.Close()
		_ = rtSrv.Drain(5 * time.Second)
		_ = srv.Drain(5 * time.Second)
	}
	return specs, cleanup
}

// roundtripClients is the parcserve_roundtrip concurrency: enough open
// connections to keep the batcher coalescing, small enough that the
// measurement is the server, not client-side scheduling.
const roundtripClients = 8

// loopN is the per-For trip count: large enough that the schedules do
// real distribution work, small enough that construct overhead (the
// thing the ratchet protects) still dominates the measurement.
const loopN = 1024

// regionOps bounds how many worksharing constructs run in one parallel
// region: Pyjama's SPMD slot table grows with every construct, so an
// unbounded measurement batch inside a single region would grow it
// without limit. Batching regions keeps the table small and amortizes
// region spawn to under regionOps^-1 of the measurement.
const regionOps = 256

// forOps runs body-with-an-ops-budget across fresh 4-thread regions
// until n total worksharing constructs have executed per thread.
func forOps(n int, run func(tc *pyjama.TC, ops int)) {
	for done := 0; done < n; done += regionOps {
		ops := regionOps
		if n-done < ops {
			ops = n - done
		}
		pyjama.Parallel(4, func(tc *pyjama.TC) { run(tc, ops) })
	}
}
