// Package perfbench is the committed-performance harness behind
// `parcbench -perf`: it measures the runtime's canonical hot paths
// (scheduler submit, task join, worksharing loops, barriers, job-serving
// enqueue), emits a machine-readable report (BENCH_<n>.json at the repo
// root), and compares a fresh run against the last committed report —
// the perf ratchet. A hot path that regresses by more than the tolerance
// fails the comparison, so a perf regression is a red build, not a
// surprise in the next paper run.
//
// The harness is deliberately self-contained (no testing.B): each spec
// is a closure that runs the operation n times, and Measure grows n
// until a repeat fills the measurement window, then keeps the best
// (minimum) ns/op and allocs/op across repeats. Minimum, not mean: the
// best observed run is the least-noisy estimate of the code's cost, and
// the ratchet must not tighten or loosen with machine load.
package perfbench

import (
	"fmt"
	"runtime"
	"time"
)

// Result is one hot path's measurement.
type Result struct {
	// Name identifies the hot path (stable across reports; the
	// comparator joins on it).
	Name string `json:"name"`
	// NsPerOp is wall time per operation, best repeat.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation (process-wide
	// Mallocs delta, so worker-side allocations count), best repeat.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Ops is the iteration count of the best repeat.
	Ops int `json:"ops"`
	// OpsPerSec is the throughput reading (1e9/NsPerOp), recorded only
	// for specs marked Throughput — end-to-end paths like
	// parcserve_roundtrip where jobs/sec is the number humans reason
	// about. It is derived, so the comparator still ratchets on NsPerOp.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// Report is the serialized form of one full suite run — the BENCH_<n>.json
// schema (documented in EXPERIMENTS.md).
type Report struct {
	// Schema versions the file format.
	Schema string `json:"schema"`
	// Go, GOOS, GOARCH, CPUs record the environment the numbers came
	// from; the comparator warns (in its verdict text) when they differ.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Created is the RFC 3339 run timestamp.
	Created string `json:"created"`
	// Quick marks reduced-window runs (CI smoke); quick numbers are
	// noisier and not meant to be committed as a baseline.
	Quick   bool     `json:"quick,omitempty"`
	Results []Result `json:"results"`
}

// SchemaV1 is the current report schema identifier.
const SchemaV1 = "parc751/perfbench/v1"

// Spec is one benchmarkable hot path: Bench must perform the operation
// exactly n times (amortizing any fixture it needs across the n ops).
// Throughput marks end-to-end paths whose report rows should also carry
// an ops/sec reading.
type Spec struct {
	Name       string
	Bench      func(n int)
	Throughput bool
}

// Options tunes the measurement.
type Options struct {
	// MinTime is the per-repeat measurement window; a repeat's iteration
	// count grows until one batch fills it.
	MinTime time.Duration
	// Repeats is how many windows to measure; the best is kept.
	Repeats int
}

// DefaultOptions is the committed-baseline configuration.
func DefaultOptions() Options { return Options{MinTime: 200 * time.Millisecond, Repeats: 3} }

// QuickOptions is the CI-smoke configuration: one short window per path.
func QuickOptions() Options { return Options{MinTime: 25 * time.Millisecond, Repeats: 2} }

func (o *Options) fill() {
	if o.MinTime <= 0 {
		o.MinTime = DefaultOptions().MinTime
	}
	if o.Repeats < 1 {
		o.Repeats = 1
	}
}

// maxOps bounds iteration growth for pathologically fast ops.
const maxOps = 1 << 28

// Measure runs one spec: warm up, grow the batch size until a batch
// fills the window, repeat, keep the minimum ns/op and allocs/op.
func Measure(s Spec, o Options) Result {
	o.fill()
	s.Bench(1) // warmup: lazy pools, ring capacities, first-use paths
	res := Result{Name: s.Name, NsPerOp: float64(maxInt64), AllocsPerOp: float64(maxInt64)}
	n := 1
	for r := 0; r < o.Repeats; r++ {
		for {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			s.Bench(n)
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&after)
			if elapsed >= o.MinTime || n >= maxOps {
				ns := float64(elapsed.Nanoseconds()) / float64(n)
				allocs := float64(after.Mallocs-before.Mallocs) / float64(n)
				if ns < res.NsPerOp {
					res.NsPerOp = ns
					res.Ops = n
				}
				if allocs < res.AllocsPerOp {
					res.AllocsPerOp = allocs
				}
				break
			}
			n = grow(n, elapsed, o.MinTime)
		}
	}
	if s.Throughput && res.NsPerOp > 0 {
		res.OpsPerSec = 1e9 / res.NsPerOp
	}
	return res
}

const maxInt64 = int64(^uint64(0) >> 1)

// grow predicts the next batch size from the last one, like the testing
// package: overshoot the window slightly, never grow more than 100x,
// always make progress.
func grow(n int, elapsed, target time.Duration) int {
	next := n * 100
	if elapsed > 0 {
		next = int(float64(n) * 1.2 * float64(target) / float64(elapsed))
	}
	if next <= n {
		next = n + 1
	}
	if next > n*100 {
		next = n * 100
	}
	if next > maxOps {
		next = maxOps
	}
	return next
}

// RunSuite measures every spec and assembles the report. progress, when
// non-nil, receives one line per completed path.
func RunSuite(specs []Spec, o Options, progress func(string)) Report {
	rep := Report{
		Schema:  SchemaV1,
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Created: time.Now().UTC().Format(time.RFC3339),
		Quick:   o.MinTime > 0 && o.MinTime < DefaultOptions().MinTime,
	}
	for _, s := range specs {
		r := Measure(s, o)
		rep.Results = append(rep.Results, r)
		if progress != nil {
			progress(fmt.Sprintf("%-24s %12.1f ns/op %8.2f allocs/op  (n=%d)", r.Name, r.NsPerOp, r.AllocsPerOp, r.Ops))
		}
	}
	return rep
}
