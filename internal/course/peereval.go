package course

import (
	"fmt"
	"math"
	"sort"
)

// PeerEvaluation models the §III-C requirement that "students were also
// required to submit peer evaluations discussing the contributions made by
// each member". Each member rates every other member on a 1-5 scale; the
// instructors cross-check the ratings against the subversion log and, "in
// most cases", award equal marks — the machinery below implements that
// workflow.
type PeerEvaluation struct {
	Members []string
	// Ratings[rater][ratee] in [1, 5]; self-ratings are ignored.
	Ratings map[string]map[string]float64
}

// Validate checks every member rated every other member within scale.
func (pe PeerEvaluation) Validate() error {
	if len(pe.Members) < 2 {
		return fmt.Errorf("course: peer evaluation needs at least two members")
	}
	for _, rater := range pe.Members {
		rs, ok := pe.Ratings[rater]
		if !ok {
			return fmt.Errorf("course: member %q submitted no evaluation", rater)
		}
		for _, ratee := range pe.Members {
			if ratee == rater {
				continue
			}
			v, ok := rs[ratee]
			if !ok {
				return fmt.Errorf("course: %q did not rate %q", rater, ratee)
			}
			if v < 1 || v > 5 {
				return fmt.Errorf("course: %q rated %q %.1f, outside [1,5]", rater, ratee, v)
			}
		}
	}
	return nil
}

// MeanReceived returns each member's mean rating from peers.
func (pe PeerEvaluation) MeanReceived() map[string]float64 {
	out := map[string]float64{}
	for _, ratee := range pe.Members {
		sum, n := 0.0, 0
		for _, rater := range pe.Members {
			if rater == ratee {
				continue
			}
			if v, ok := pe.Ratings[rater][ratee]; ok {
				sum += v
				n++
			}
		}
		if n > 0 {
			out[ratee] = sum / float64(n)
		}
	}
	return out
}

// Consensus reports whether every member's mean received rating lies
// within tol of the group's overall mean — the "in most cases, students
// within a team were awarded equal marks" condition.
func (pe PeerEvaluation) Consensus(tol float64) bool {
	means := pe.MeanReceived()
	if len(means) == 0 {
		return true
	}
	total := 0.0
	for _, m := range means {
		total += m
	}
	avg := total / float64(len(means))
	for _, m := range means {
		if math.Abs(m-avg) > tol {
			return false
		}
	}
	return true
}

// AdjustedMarks distributes the group mark per member: with consensus,
// everyone receives the group mark; otherwise each member's mark scales
// with their mean rating relative to the group average, clamped to ±20%
// and capped at 100.
func (pe PeerEvaluation) AdjustedMarks(groupMark float64, tol float64) map[string]float64 {
	out := map[string]float64{}
	if pe.Consensus(tol) {
		for _, m := range pe.Members {
			out[m] = groupMark
		}
		return out
	}
	means := pe.MeanReceived()
	total := 0.0
	for _, m := range means {
		total += m
	}
	avg := total / float64(len(means))
	for _, member := range pe.Members {
		factor := 1.0
		if avg > 0 {
			factor = means[member] / avg
		}
		if factor > 1.2 {
			factor = 1.2
		}
		if factor < 0.8 {
			factor = 0.8
		}
		mark := groupMark * factor
		if mark > 100 {
			mark = 100
		}
		out[member] = mark
	}
	return out
}

// CrossCheck compares peer perception with the commit log: it returns the
// members whose peer standing (above/below the group mean) contradicts
// their commit share (below/above the equal share) by more than tol on
// both axes — the cases an instructor investigates rather than trusting
// either signal alone.
func (pe PeerEvaluation) CrossCheck(log CommitLog, tol float64) ([]string, error) {
	shares, err := log.Shares()
	if err != nil {
		return nil, err
	}
	shareOf := map[string]float64{}
	for _, s := range shares {
		shareOf[s.Member] = s.Share
	}
	means := pe.MeanReceived()
	total := 0.0
	for _, m := range means {
		total += m
	}
	avg := total / float64(len(means))
	equal := 1 / float64(len(pe.Members))

	var flagged []string
	for _, m := range pe.Members {
		peerHigh := means[m] > avg+tol
		peerLow := means[m] < avg-tol
		commitHigh := shareOf[m] > equal+0.1
		commitLow := shareOf[m] < equal-0.1
		if (peerHigh && commitLow) || (peerLow && commitHigh) {
			flagged = append(flagged, m)
		}
	}
	sort.Strings(flagged)
	return flagged, nil
}
