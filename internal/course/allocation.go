package course

import (
	"fmt"
	"sort"

	"parc751/internal/xrand"
)

// Group is one project group in the doodle poll.
type Group struct {
	ID      int
	Arrival int   // poll submission order (lower = earlier); unique
	Prefs   []int // topic indices in preference order
}

// PollConfig describes the §III-D allocation: 10 topics, each with room
// for 2 groups, allocated strictly first-in-first-served.
type PollConfig struct {
	Topics         int
	GroupsPerTopic int
}

// DefaultPoll returns the paper's configuration: 10 topics x 2 groups.
func DefaultPoll() PollConfig { return PollConfig{Topics: 10, GroupsPerTopic: 2} }

// Capacity returns the total number of groups the poll can place.
func (p PollConfig) Capacity() int { return p.Topics * p.GroupsPerTopic }

// Allocation is the poll outcome.
type Allocation struct {
	// TopicOf maps group ID to its topic (absent if unplaced).
	TopicOf map[int]int
	// GroupsOn maps topic to the group IDs placed on it, in arrival order.
	GroupsOn map[int][]int
	// Unplaced lists group IDs that exhausted their preferences.
	Unplaced []int
}

// Allocate runs the first-in-first-served doodle poll: groups are
// processed in arrival order and each receives the highest-preference
// topic that still has capacity. The paper reports this "worked extremely
// well, minimising administration involvement" — the tests verify its
// fairness properties (every group placed when preferences are complete,
// capacity never exceeded, earlier arrivals never lose a topic to later
// ones).
func Allocate(cfg PollConfig, groups []Group) Allocation {
	byArrival := append([]Group(nil), groups...)
	sort.Slice(byArrival, func(i, j int) bool { return byArrival[i].Arrival < byArrival[j].Arrival })
	remaining := make([]int, cfg.Topics)
	for i := range remaining {
		remaining[i] = cfg.GroupsPerTopic
	}
	out := Allocation{TopicOf: map[int]int{}, GroupsOn: map[int][]int{}}
	for _, g := range byArrival {
		placed := false
		for _, t := range g.Prefs {
			if t < 0 || t >= cfg.Topics {
				continue
			}
			if remaining[t] > 0 {
				remaining[t]--
				out.TopicOf[g.ID] = t
				out.GroupsOn[t] = append(out.GroupsOn[t], g.ID)
				placed = true
				break
			}
		}
		if !placed {
			out.Unplaced = append(out.Unplaced, g.ID)
		}
	}
	return out
}

// FormGroups splits a cohort of n students into groups of the given size
// (the last group may be smaller), assigning arrival order pseudo-randomly
// — the poll-release scramble. It returns groups with full preference
// lists generated with popularity skew, modelling "some project topics had
// higher preference than others" (§III-D).
func FormGroups(seed uint64, students, size int, cfg PollConfig) []Group {
	if size < 1 {
		size = 1
	}
	n := (students + size - 1) / size
	r := xrand.New(seed)
	arrivals := r.Perm(n)
	groups := make([]Group, n)
	zipf := xrand.NewZipfGen(r, cfg.Topics, 0.8)
	for i := range groups {
		groups[i] = Group{
			ID:      i,
			Arrival: arrivals[i],
			Prefs:   skewedPrefs(r, zipf, cfg.Topics),
		}
	}
	return groups
}

// skewedPrefs produces a full ranking of all topics where popular topics
// (low Zipf rank) tend to appear early.
func skewedPrefs(r *xrand.Rand, zipf *xrand.ZipfGen, topics int) []int {
	used := make([]bool, topics)
	prefs := make([]int, 0, topics)
	for len(prefs) < topics {
		t := zipf.Next()
		if !used[t] {
			used[t] = true
			prefs = append(prefs, t)
			continue
		}
		// Collision: take the next unused topic cyclically, which keeps
		// the ranking complete without biasing the head.
		for d := 1; d < topics; d++ {
			c := (t + d) % topics
			if !used[c] {
				used[c] = true
				prefs = append(prefs, c)
				break
			}
		}
	}
	return prefs
}

// Satisfaction returns the average preference rank groups received
// (1 = everyone got their first choice). Unplaced groups count as
// cfg.Topics+1.
func Satisfaction(cfg PollConfig, groups []Group, a Allocation) float64 {
	if len(groups) == 0 {
		return 0
	}
	total := 0
	for _, g := range groups {
		t, ok := a.TopicOf[g.ID]
		if !ok {
			total += cfg.Topics + 1
			continue
		}
		for rank, p := range g.Prefs {
			if p == t {
				total += rank + 1
				break
			}
		}
	}
	return float64(total) / float64(len(groups))
}

// String renders an allocation summary.
func (a Allocation) String() string {
	return fmt.Sprintf("placed=%d unplaced=%d topics=%d", len(a.TopicOf), len(a.Unplaced), len(a.GroupsOn))
}
