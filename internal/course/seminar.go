package course

import (
	"fmt"
	"sort"
)

// The §III-C seminar mechanics: from weeks 7 to 10, groups present during
// standard lecture slots; each lecture fits two 20-minute presentations
// (+5 minutes of questions), and groups self-schedule through a
// first-in-first-served doodle poll. Groups presenting early are assessed
// on conveying their topic, not on progress.

// SeminarSlot is one presentation slot inside a lecture.
type SeminarSlot struct {
	Week    int // teaching week 7..10
	Lecture int // lecture index within the week (0-based)
	Half    int // 0 = first 25 minutes, 1 = second
}

// String renders the slot.
func (s SeminarSlot) String() string {
	return fmt.Sprintf("week %d, lecture %d, slot %d", s.Week, s.Lecture, s.Half)
}

// SeminarCalendar returns the available slots: lecturesPerWeek lectures in
// each of weeks 7-10, two presentations per lecture, in chronological
// order.
func SeminarCalendar(lecturesPerWeek int) []SeminarSlot {
	if lecturesPerWeek < 1 {
		lecturesPerWeek = 1
	}
	var out []SeminarSlot
	for week := 7; week <= 10; week++ {
		for lec := 0; lec < lecturesPerWeek; lec++ {
			for half := 0; half < 2; half++ {
				out = append(out, SeminarSlot{Week: week, Lecture: lec, Half: half})
			}
		}
	}
	return out
}

// SlotRequest is one group's poll submission: arrival order plus the slot
// indices (into the calendar) it would accept, in preference order.
type SlotRequest struct {
	GroupID int
	Arrival int
	Prefs   []int
}

// SeminarSchedule maps group IDs to slot indices.
type SeminarSchedule struct {
	Slots      []SeminarSlot
	SlotOf     map[int]int // group -> slot index
	Unassigned []int
}

// ScheduleSeminars runs the first-in-first-served slot poll: requests are
// processed in arrival order, each group takes its most-preferred free
// slot. Groups whose acceptable slots are all taken go unassigned (in
// practice the instructors would intervene; the tests check this cannot
// happen when groups accept all slots and capacity suffices).
func ScheduleSeminars(slots []SeminarSlot, reqs []SlotRequest) SeminarSchedule {
	byArrival := append([]SlotRequest(nil), reqs...)
	sort.Slice(byArrival, func(i, j int) bool { return byArrival[i].Arrival < byArrival[j].Arrival })
	taken := make([]bool, len(slots))
	out := SeminarSchedule{Slots: slots, SlotOf: map[int]int{}}
	for _, r := range byArrival {
		placed := false
		for _, s := range r.Prefs {
			if s < 0 || s >= len(slots) || taken[s] {
				continue
			}
			taken[s] = true
			out.SlotOf[r.GroupID] = s
			placed = true
			break
		}
		if !placed {
			out.Unassigned = append(out.Unassigned, r.GroupID)
		}
	}
	return out
}

// AllSlotsPrefs is the "any slot is fine" preference list: every slot in
// chronological order — late submitters end up presenting later, which is
// exactly the dynamic the paper describes (earlier presenters are not
// penalised for less progress).
func AllSlotsPrefs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// PresentationOrder returns group IDs in chronological slot order.
func (s SeminarSchedule) PresentationOrder() []int {
	type pair struct{ group, slot int }
	var ps []pair
	for g, idx := range s.SlotOf {
		ps = append(ps, pair{g, idx})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].slot < ps[j].slot })
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.group
	}
	return out
}

// WeeksUsed reports how many distinct weeks host at least one seminar.
func (s SeminarSchedule) WeeksUsed() int {
	weeks := map[int]bool{}
	for _, idx := range s.SlotOf {
		weeks[s.Slots[idx].Week] = true
	}
	return len(weeks)
}
