package course

import (
	"math"
	"testing"
	"testing/quick"
)

// ---- Nexus (Figure 1) ----

func TestClassifyQuadrants(t *testing.T) {
	cases := []struct {
		e    Emphasis
		r    Role
		want Quadrant
	}{
		{EmphasisContent, RoleAudience, ResearchLed},
		{EmphasisProcess, RoleAudience, ResearchOriented},
		{EmphasisContent, RoleParticipant, ResearchTutored},
		{EmphasisProcess, RoleParticipant, ResearchBased},
	}
	for _, c := range cases {
		if got := Classify(c.e, c.r); got != c.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", c.e, c.r, got, c.want)
		}
	}
}

func TestSoftEng751CoversThreeQuadrants(t *testing.T) {
	// §III-E: research-led, research-based and research-tutored are all
	// present; research-oriented is the one deliberately missing.
	cov := NexusCoverage(SoftEng751Activities())
	if cov[ResearchLed] == 0 || cov[ResearchBased] == 0 || cov[ResearchTutored] == 0 {
		t.Fatalf("coverage = %v, want three quadrants covered", cov)
	}
	if cov[ResearchOriented] != 0 {
		t.Fatalf("research-oriented should be absent, got %d", cov[ResearchOriented])
	}
}

func TestNexusTableComplete(t *testing.T) {
	acts := SoftEng751Activities()
	rows := NexusTable(acts)
	if len(rows) != len(acts) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Activity != acts[i].Name {
			t.Errorf("row %d mislabeled", i)
		}
	}
}

func TestQuadrantStrings(t *testing.T) {
	for q, want := range map[Quadrant]string{
		ResearchLed: "research-led", ResearchOriented: "research-oriented",
		ResearchTutored: "research-tutored", ResearchBased: "research-based",
		Quadrant(9): "unknown",
	} {
		if q.String() != want {
			t.Errorf("%d.String() = %q", q, q.String())
		}
	}
}

// ---- Calendar (Figure 2) ----

func TestCalendarStructure(t *testing.T) {
	weeks := Calendar()
	if got := TeachingWeeks(weeks); got != 12 {
		t.Fatalf("teaching weeks = %d, want 12", got)
	}
	breaks := 0
	for _, w := range weeks {
		if w.Kind == StudyBreak {
			breaks++
		}
	}
	if breaks != 2 {
		t.Fatalf("break weeks = %d, want 2", breaks)
	}
}

func TestCalendarPhases(t *testing.T) {
	weeks := Calendar()
	kinds := map[int]WeekKind{}
	for _, w := range weeks {
		if w.Number > 0 {
			kinds[w.Number] = w.Kind
		}
	}
	for wk := 1; wk <= 5; wk++ {
		if kinds[wk] != InstructorTeaching {
			t.Errorf("week %d = %v, want IT", wk, kinds[wk])
		}
	}
	if kinds[6] != Assessment {
		t.Errorf("week 6 = %v, want A", kinds[6])
	}
	for wk := 7; wk <= 10; wk++ {
		if kinds[wk] != StudentTeaching {
			t.Errorf("week %d = %v, want ST", wk, kinds[wk])
		}
	}
	if kinds[11] != Assessment {
		t.Errorf("week 11 = %v, want A", kinds[11])
	}
	if kinds[12] != ProjectWork {
		t.Errorf("week 12 = %v, want P", kinds[12])
	}
}

func TestDevelopmentWeeksIsEight(t *testing.T) {
	// §III-D: "students will have 8 weeks of development time".
	if got := DevelopmentWeeks(Calendar()); got != 8 {
		t.Fatalf("development weeks = %d, want 8", got)
	}
}

func TestWeekKindCodes(t *testing.T) {
	for k, want := range map[WeekKind]string{
		InstructorTeaching: "IT", Assessment: "A", ProjectWork: "P",
		StudentTeaching: "ST", StudyBreak: "--", WeekKind(9): "?",
	} {
		if k.Code() != want {
			t.Errorf("%d.Code() = %q", k, k.Code())
		}
	}
}

// ---- Assessment (§III-C) ----

func TestAssessmentSchemeSumsTo100(t *testing.T) {
	if err := ValidateScheme(AssessmentScheme()); err != nil {
		t.Fatal(err)
	}
}

func TestAssessmentIndividualShareIs35(t *testing.T) {
	// The paper stresses only 25% targets individual understanding of
	// lecture material (Test 1); Test 2 adds 10% individual.
	indiv := 0
	for _, c := range AssessmentScheme() {
		if c.Individual {
			indiv += c.Weight
		}
	}
	if indiv != 35 {
		t.Fatalf("individual weight = %d, want 35", indiv)
	}
}

func TestValidateSchemeRejectsBadWeights(t *testing.T) {
	if err := ValidateScheme([]Component{{Name: "x", Weight: 50}}); err == nil {
		t.Error("sum != 100 accepted")
	}
	if err := ValidateScheme([]Component{{Name: "x", Weight: -5}, {Name: "y", Weight: 105}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestFinalGrade(t *testing.T) {
	scheme := AssessmentScheme()
	marks := map[string]float64{}
	for _, c := range scheme {
		marks[c.Name] = 80
	}
	if g := FinalGrade(scheme, marks); math.Abs(g-80) > 1e-9 {
		t.Fatalf("uniform 80s grade = %g", g)
	}
	if g := FinalGrade(scheme, nil); g != 0 {
		t.Fatalf("empty marks grade = %g", g)
	}
	// Only Test 1 perfect: 25% of the grade.
	if g := FinalGrade(scheme, map[string]float64{"Test 1 (week 6)": 100}); math.Abs(g-25) > 1e-9 {
		t.Fatalf("test-1-only grade = %g", g)
	}
}

func TestCommitLogShares(t *testing.T) {
	log := CommitLog{CommitsByMember: map[string]int{"ana": 30, "ben": 30, "cy": 40}}
	shares, err := log.Shares()
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Member != "cy" || math.Abs(shares[0].Share-0.4) > 1e-12 {
		t.Fatalf("top share = %+v", shares[0])
	}
	total := 0.0
	for _, s := range shares {
		total += s.Share
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("shares sum = %g", total)
	}
}

func TestCommitLogBalance(t *testing.T) {
	balanced := CommitLog{CommitsByMember: map[string]int{"a": 33, "b": 34, "c": 33}}
	if ok, _ := balanced.Balanced(0.05); !ok {
		t.Error("balanced log flagged unbalanced")
	}
	skewed := CommitLog{CommitsByMember: map[string]int{"a": 90, "b": 5, "c": 5}}
	if ok, _ := skewed.Balanced(0.05); ok {
		t.Error("skewed log passed balance check")
	}
	if _, err := (CommitLog{}).Balanced(0.05); err != ErrEmptyLog {
		t.Errorf("empty log error = %v", err)
	}
	if _, err := (CommitLog{CommitsByMember: map[string]int{"a": -1}}).Shares(); err == nil {
		t.Error("negative commits accepted")
	}
}

// ---- Allocation (§III-D) ----

func TestAllocatePaperCohort(t *testing.T) {
	// ~60 students, groups of 3 => 20 groups on 10 topics x 2 slots:
	// exactly full, every group placed, exactly two groups per topic.
	cfg := DefaultPoll()
	groups := FormGroups(42, 60, 3, cfg)
	if len(groups) != 20 {
		t.Fatalf("groups = %d", len(groups))
	}
	a := Allocate(cfg, groups)
	if len(a.Unplaced) != 0 {
		t.Fatalf("unplaced groups: %v", a.Unplaced)
	}
	for topic, gs := range a.GroupsOn {
		if len(gs) != 2 {
			t.Fatalf("topic %d has %d groups, want 2", topic, len(gs))
		}
	}
	if len(a.GroupsOn) != 10 {
		t.Fatalf("topics used = %d", len(a.GroupsOn))
	}
}

func TestAllocateCapacityNeverExceeded(t *testing.T) {
	f := func(seed uint64, nRaw, topicsRaw, capRaw uint8) bool {
		topics := int(topicsRaw%8) + 1
		capPer := int(capRaw%3) + 1
		cfg := PollConfig{Topics: topics, GroupsPerTopic: capPer}
		n := int(nRaw % 40)
		groups := FormGroups(seed, n*3, 3, cfg)
		a := Allocate(cfg, groups)
		for _, gs := range a.GroupsOn {
			if len(gs) > capPer {
				return false
			}
		}
		// Everyone is either placed or unplaced, never both/neither.
		for _, g := range groups {
			_, placed := a.TopicOf[g.ID]
			un := false
			for _, u := range a.Unplaced {
				if u == g.ID {
					un = true
				}
			}
			if placed == un {
				return false
			}
		}
		// With complete preference lists, unplaced only when over capacity.
		if len(groups) <= cfg.Capacity() && len(a.Unplaced) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateFirstInFirstServed(t *testing.T) {
	cfg := PollConfig{Topics: 2, GroupsPerTopic: 1}
	groups := []Group{
		{ID: 0, Arrival: 5, Prefs: []int{0, 1}},
		{ID: 1, Arrival: 1, Prefs: []int{0, 1}}, // earlier arrival
	}
	a := Allocate(cfg, groups)
	if a.TopicOf[1] != 0 {
		t.Fatalf("earlier group lost its first choice: %+v", a)
	}
	if a.TopicOf[0] != 1 {
		t.Fatalf("later group should get second choice: %+v", a)
	}
}

func TestAllocateRespectsPreferenceOrder(t *testing.T) {
	cfg := PollConfig{Topics: 3, GroupsPerTopic: 2}
	groups := []Group{{ID: 7, Arrival: 0, Prefs: []int{2, 0, 1}}}
	a := Allocate(cfg, groups)
	if a.TopicOf[7] != 2 {
		t.Fatalf("group got %d, wanted first preference 2", a.TopicOf[7])
	}
}

func TestAllocateIgnoresInvalidPrefs(t *testing.T) {
	cfg := PollConfig{Topics: 2, GroupsPerTopic: 1}
	groups := []Group{{ID: 0, Arrival: 0, Prefs: []int{-1, 99, 1}}}
	a := Allocate(cfg, groups)
	if a.TopicOf[0] != 1 {
		t.Fatalf("invalid preferences not skipped: %+v", a)
	}
}

func TestSatisfactionPerfectWhenUncontended(t *testing.T) {
	cfg := PollConfig{Topics: 4, GroupsPerTopic: 2}
	groups := []Group{
		{ID: 0, Arrival: 0, Prefs: []int{0, 1, 2, 3}},
		{ID: 1, Arrival: 1, Prefs: []int{1, 0, 2, 3}},
	}
	a := Allocate(cfg, groups)
	if s := Satisfaction(cfg, groups, a); s != 1 {
		t.Fatalf("satisfaction = %g, want 1", s)
	}
	if Satisfaction(cfg, nil, a) != 0 {
		t.Error("empty satisfaction not 0")
	}
}

func TestAllocationString(t *testing.T) {
	cfg := DefaultPoll()
	a := Allocate(cfg, FormGroups(1, 60, 3, cfg))
	if a.String() == "" {
		t.Error("empty allocation string")
	}
}

// ---- Survey (§V-A) ----

func TestExactSurveyReproducesPaperNumbers(t *testing.T) {
	qs := ExactSurvey(60, PaperTargets())
	wants := []float64{0.95, 0.95, 0.92}
	for i, q := range qs {
		if q.Respondents() != 60 {
			t.Fatalf("q%d respondents = %d", i, q.Respondents())
		}
		if got := q.Agreement(); math.Abs(got-wants[i]) > 0.01 {
			t.Errorf("q%d agreement = %.3f, want %.2f", i, got, wants[i])
		}
	}
}

func TestSimulatedSurveyNearTargets(t *testing.T) {
	qs := SimulatedSurvey(7, 500, PaperTargets())
	wants := []float64{0.95, 0.95, 0.92}
	for i, q := range qs {
		if got := q.Agreement(); math.Abs(got-wants[i]) > 0.05 {
			t.Errorf("q%d simulated agreement = %.3f, want ~%.2f", i, got, wants[i])
		}
	}
}

func TestQuestionAddAndAgreement(t *testing.T) {
	var q Question
	q.Add(StronglyAgree)
	q.Add(Agree)
	q.Add(Neutral)
	q.Add(Disagree)
	if q.Respondents() != 4 {
		t.Fatalf("respondents = %d", q.Respondents())
	}
	if q.Agreement() != 0.5 {
		t.Fatalf("agreement = %g", q.Agreement())
	}
	if (&Question{}).Agreement() != 0 {
		t.Error("empty agreement not 0")
	}
}

func TestQuestionAddPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid response accepted")
		}
	}()
	var q Question
	q.Add(LikertResponse(9))
}

func TestLikertStrings(t *testing.T) {
	for r, want := range map[LikertResponse]string{
		StronglyDisagree: "strongly disagree", Disagree: "disagree",
		Neutral: "neutral", Agree: "agree", StronglyAgree: "strongly agree",
		LikertResponse(9): "invalid",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestOpenCommentsPresent(t *testing.T) {
	if len(OpenComments()) != 5 {
		t.Fatalf("comments = %d, want the 5 quoted in §V-A", len(OpenComments()))
	}
}

func BenchmarkAllocate(b *testing.B) {
	cfg := DefaultPoll()
	groups := FormGroups(1, 60, 3, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Allocate(cfg, groups)
	}
}
