package course

// WeekKind is the activity code used in Figure 2's second column.
type WeekKind int

// The Figure 2 codes: instructor-led teaching (IT), assessment (A),
// project work (P), and student-led teaching (ST).
const (
	InstructorTeaching WeekKind = iota // IT
	Assessment                         // A
	ProjectWork                        // P
	StudentTeaching                    // ST
	StudyBreak                         // the mid-semester break
)

// Code returns the Figure 2 abbreviation.
func (k WeekKind) Code() string {
	switch k {
	case InstructorTeaching:
		return "IT"
	case Assessment:
		return "A"
	case ProjectWork:
		return "P"
	case StudentTeaching:
		return "ST"
	case StudyBreak:
		return "--"
	default:
		return "?"
	}
}

// Week is one row of the course calendar.
type Week struct {
	Number int // teaching week 1..12; 0 for break rows
	Kind   WeekKind
	Detail string
}

// Calendar returns the SoftEng 751 semester structure of Figure 2 and
// §III-A: 6 teaching weeks, a 2-week study break, then 6 more teaching
// weeks. Weeks 1-5 teach the shared-memory essentials; week 6 holds
// Test 1 and the project-topic discussion; weeks 7-10 are student
// seminars; week 11 holds Test 2; week 12 is project time, with the
// implementation and report due in the final week.
func Calendar() []Week {
	weeks := []Week{
		{1, InstructorTeaching, "shared-memory parallel programming essentials"},
		{2, InstructorTeaching, "shared-memory parallel programming essentials"},
		{3, InstructorTeaching, "shared-memory parallel programming essentials"},
		{4, InstructorTeaching, "shared-memory parallel programming essentials"},
		{5, InstructorTeaching, "shared-memory parallel programming essentials"},
		{6, Assessment, "Test 1 (25%); project topics discussed and allocated"},
		{0, StudyBreak, "mid-semester study break (week 1 of 2)"},
		{0, StudyBreak, "mid-semester study break (week 2 of 2)"},
		{7, StudentTeaching, "group seminars (2 x 20+5 min per lecture slot)"},
		{8, StudentTeaching, "group seminars"},
		{9, StudentTeaching, "group seminars"},
		{10, StudentTeaching, "group seminars"},
		{11, Assessment, "Test 2 (10%) over all seminar content"},
		{12, ProjectWork, "project implementation (25%) and report (20%) due"},
	}
	return weeks
}

// TeachingWeeks counts non-break weeks (must be 12 at Auckland).
func TeachingWeeks(weeks []Week) int {
	n := 0
	for _, w := range weeks {
		if w.Kind != StudyBreak {
			n++
		}
	}
	return n
}

// DevelopmentWeeks returns the project development span the paper states
// students had (§III-D: "8 weeks of development time"): from topic
// allocation in week 6 through the final week, including the break.
func DevelopmentWeeks(weeks []Week) int {
	n := 0
	seenAlloc := false
	for _, w := range weeks {
		if w.Number == 6 {
			seenAlloc = true
			continue // allocation happens at the end of week 6
		}
		if seenAlloc {
			n++
		}
	}
	return n
}
