package course

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Component is one assessed component of the course.
type Component struct {
	Name       string
	Weight     int  // percent of the final grade
	Individual bool // assessed per student rather than per group
}

// AssessmentScheme returns the §III-C weighting: Test 1 25%, group seminar
// 20%, Test 2 10%, project implementation 25%, group report 20%. Only 25%
// (Test 1) targets individual understanding of the lecture material.
func AssessmentScheme() []Component {
	return []Component{
		{Name: "Test 1 (week 6)", Weight: 25, Individual: true},
		{Name: "Group seminar (weeks 7-10)", Weight: 20, Individual: false},
		{Name: "Test 2 (week 11)", Weight: 10, Individual: true},
		{Name: "Project implementation", Weight: 25, Individual: false},
		{Name: "Project report", Weight: 20, Individual: false},
	}
}

// ValidateScheme checks the weights sum to 100.
func ValidateScheme(cs []Component) error {
	sum := 0
	for _, c := range cs {
		if c.Weight < 0 {
			return fmt.Errorf("course: component %q has negative weight", c.Name)
		}
		sum += c.Weight
	}
	if sum != 100 {
		return fmt.Errorf("course: weights sum to %d, want 100", sum)
	}
	return nil
}

// FinalGrade combines per-component marks (each 0-100) using the scheme.
// Missing components score zero.
func FinalGrade(cs []Component, marks map[string]float64) float64 {
	total := 0.0
	for _, c := range cs {
		total += marks[c.Name] * float64(c.Weight) / 100
	}
	return total
}

// CommitLog models the subversion history the instructors used to gauge
// individual member contributions (§III-C, §IV-A).
type CommitLog struct {
	// CommitsByMember maps member name to commit count.
	CommitsByMember map[string]int
}

// ErrEmptyLog is returned when a contribution analysis has no commits.
var ErrEmptyLog = errors.New("course: empty commit log")

// Shares returns each member's fraction of the group's commits, sorted by
// descending share (name ascending as a tiebreak).
func (l CommitLog) Shares() ([]MemberShare, error) {
	total := 0
	for _, c := range l.CommitsByMember {
		if c < 0 {
			return nil, fmt.Errorf("course: negative commit count")
		}
		total += c
	}
	if total == 0 {
		return nil, ErrEmptyLog
	}
	out := make([]MemberShare, 0, len(l.CommitsByMember))
	for m, c := range l.CommitsByMember {
		out = append(out, MemberShare{Member: m, Share: float64(c) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Member < out[j].Member
	})
	return out, nil
}

// MemberShare is one member's contribution fraction.
type MemberShare struct {
	Member string
	Share  float64
}

// Balanced reports whether contributions are balanced within tolerance:
// every member's share is within tol of the equal share 1/n. The paper
// notes that "in most cases, students within a team were awarded equal
// marks"; this is the check that justifies it.
func (l CommitLog) Balanced(tol float64) (bool, error) {
	shares, err := l.Shares()
	if err != nil {
		return false, err
	}
	equal := 1 / float64(len(shares))
	for _, s := range shares {
		if math.Abs(s.Share-equal) > tol {
			return false, nil
		}
	}
	return true, nil
}
