package course

import (
	"testing"
	"testing/quick"

	"parc751/internal/xrand"
)

func TestSeminarCalendarShape(t *testing.T) {
	slots := SeminarCalendar(3)
	// 4 weeks x 3 lectures x 2 halves = 24 slots.
	if len(slots) != 24 {
		t.Fatalf("slots = %d", len(slots))
	}
	for i, s := range slots {
		if s.Week < 7 || s.Week > 10 {
			t.Fatalf("slot %d in week %d", i, s.Week)
		}
		if s.Half != i%2 {
			t.Fatalf("slot %d half = %d", i, s.Half)
		}
	}
	// Chronological order.
	for i := 1; i < len(slots); i++ {
		a, b := slots[i-1], slots[i]
		if b.Week < a.Week || (b.Week == a.Week && b.Lecture < a.Lecture) {
			t.Fatalf("calendar out of order at %d", i)
		}
	}
	if got := SeminarCalendar(0); len(got) != 8 {
		t.Fatalf("clamped calendar = %d slots", len(got))
	}
}

func TestScheduleTwentyGroups(t *testing.T) {
	// The paper's cohort: 20 groups over weeks 7-10 with 3 lectures/week
	// (24 half-slots) — everyone fits.
	slots := SeminarCalendar(3)
	reqs := make([]SlotRequest, 20)
	for i := range reqs {
		reqs[i] = SlotRequest{GroupID: i, Arrival: i, Prefs: AllSlotsPrefs(len(slots))}
	}
	sched := ScheduleSeminars(slots, reqs)
	if len(sched.Unassigned) != 0 {
		t.Fatalf("unassigned: %v", sched.Unassigned)
	}
	if len(sched.SlotOf) != 20 {
		t.Fatalf("assigned = %d", len(sched.SlotOf))
	}
	if sched.WeeksUsed() < 3 {
		t.Fatalf("weeks used = %d; presentations should spread", sched.WeeksUsed())
	}
	// First-in-first-served with chronological preferences: earlier
	// arrivals present earlier.
	order := sched.PresentationOrder()
	for i, g := range order {
		if g != i {
			t.Fatalf("presentation order = %v (FIFO broken)", order)
		}
	}
}

func TestScheduleNoDoubleBooking(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := xrand.New(seed)
		slots := SeminarCalendar(3)
		n := int(nRaw % 30)
		reqs := make([]SlotRequest, n)
		for i := range reqs {
			// Random subsets of acceptable slots.
			var prefs []int
			for s := range slots {
				if r.Float64() < 0.5 {
					prefs = append(prefs, s)
				}
			}
			r.Shuffle(len(prefs), func(a, b int) { prefs[a], prefs[b] = prefs[b], prefs[a] })
			reqs[i] = SlotRequest{GroupID: i, Arrival: r.Intn(1000), Prefs: prefs}
		}
		sched := ScheduleSeminars(slots, reqs)
		used := map[int]bool{}
		for _, idx := range sched.SlotOf {
			if used[idx] {
				return false // double booking
			}
			used[idx] = true
		}
		// Everyone is either assigned or unassigned, exactly once.
		return len(sched.SlotOf)+len(sched.Unassigned) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFIFOPriority(t *testing.T) {
	slots := SeminarCalendar(1) // 8 slots
	reqs := []SlotRequest{
		{GroupID: 0, Arrival: 10, Prefs: []int{0}},
		{GroupID: 1, Arrival: 1, Prefs: []int{0}}, // earlier, same want
	}
	sched := ScheduleSeminars(slots, reqs)
	if sched.SlotOf[1] != 0 {
		t.Fatalf("earlier group lost the slot: %v", sched.SlotOf)
	}
	if len(sched.Unassigned) != 1 || sched.Unassigned[0] != 0 {
		t.Fatalf("unassigned = %v", sched.Unassigned)
	}
}

func TestScheduleInvalidPrefsSkipped(t *testing.T) {
	slots := SeminarCalendar(1)
	reqs := []SlotRequest{{GroupID: 5, Arrival: 0, Prefs: []int{-3, 99, 2}}}
	sched := ScheduleSeminars(slots, reqs)
	if sched.SlotOf[5] != 2 {
		t.Fatalf("invalid prefs not skipped: %v", sched.SlotOf)
	}
}

func TestSlotString(t *testing.T) {
	s := SeminarSlot{Week: 8, Lecture: 1, Half: 0}
	if s.String() == "" {
		t.Fatal("empty slot string")
	}
}
