package course

import (
	"math"
	"testing"
)

func evenEval() PeerEvaluation {
	return PeerEvaluation{
		Members: []string{"ana", "ben", "cy"},
		Ratings: map[string]map[string]float64{
			"ana": {"ben": 4, "cy": 4},
			"ben": {"ana": 4, "cy": 4},
			"cy":  {"ana": 4, "ben": 4},
		},
	}
}

func skewedEval() PeerEvaluation {
	return PeerEvaluation{
		Members: []string{"ana", "ben", "cy"},
		Ratings: map[string]map[string]float64{
			"ana": {"ben": 2, "cy": 5},
			"ben": {"ana": 5, "cy": 5},
			"cy":  {"ana": 5, "ben": 2},
		},
	}
}

func TestValidateAcceptsComplete(t *testing.T) {
	if err := evenEval().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsGaps(t *testing.T) {
	pe := evenEval()
	delete(pe.Ratings["ana"], "ben")
	if pe.Validate() == nil {
		t.Error("missing rating accepted")
	}
	pe2 := evenEval()
	pe2.Ratings["ana"]["ben"] = 7
	if pe2.Validate() == nil {
		t.Error("out-of-scale rating accepted")
	}
	pe3 := evenEval()
	delete(pe3.Ratings, "cy")
	if pe3.Validate() == nil {
		t.Error("missing rater accepted")
	}
	if (PeerEvaluation{Members: []string{"solo"}}).Validate() == nil {
		t.Error("single-member group accepted")
	}
}

func TestMeanReceived(t *testing.T) {
	means := skewedEval().MeanReceived()
	if means["ana"] != 5 {
		t.Errorf("ana mean = %g", means["ana"])
	}
	if means["ben"] != 2 {
		t.Errorf("ben mean = %g", means["ben"])
	}
	if means["cy"] != 5 {
		t.Errorf("cy mean = %g", means["cy"])
	}
}

func TestConsensus(t *testing.T) {
	if !evenEval().Consensus(0.5) {
		t.Error("even ratings not consensual")
	}
	if skewedEval().Consensus(0.5) {
		t.Error("skewed ratings reported consensual")
	}
}

func TestAdjustedMarksEqualOnConsensus(t *testing.T) {
	marks := evenEval().AdjustedMarks(85, 0.5)
	for m, v := range marks {
		if v != 85 {
			t.Errorf("%s mark = %g, want 85", m, v)
		}
	}
}

func TestAdjustedMarksScaleOnDisagreement(t *testing.T) {
	marks := skewedEval().AdjustedMarks(80, 0.5)
	if marks["ben"] >= marks["ana"] {
		t.Errorf("low-rated member not below high-rated: %v", marks)
	}
	// Clamps: ben's factor 2/4 = 0.5 clamps to 0.8 => 64.
	if math.Abs(marks["ben"]-64) > 1e-9 {
		t.Errorf("ben mark = %g, want 64 (clamped)", marks["ben"])
	}
	// ana's factor 5/4 = 1.25 clamps to 1.2 => 96.
	if math.Abs(marks["ana"]-96) > 1e-9 {
		t.Errorf("ana mark = %g, want 96 (clamped)", marks["ana"])
	}
}

func TestAdjustedMarksCapAt100(t *testing.T) {
	marks := skewedEval().AdjustedMarks(95, 0.5)
	for m, v := range marks {
		if v > 100 {
			t.Errorf("%s mark = %g exceeds 100", m, v)
		}
	}
}

func TestCrossCheckFlagsContradictions(t *testing.T) {
	// cy is praised by peers (mean 5) but barely committed.
	log := CommitLog{CommitsByMember: map[string]int{"ana": 45, "ben": 45, "cy": 10}}
	flagged, err := skewedEval().CrossCheck(log, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range flagged {
		if m == "cy" {
			found = true
		}
	}
	if !found {
		t.Errorf("cy not flagged: %v", flagged)
	}
}

func TestCrossCheckCleanGroup(t *testing.T) {
	log := CommitLog{CommitsByMember: map[string]int{"ana": 33, "ben": 33, "cy": 34}}
	flagged, err := evenEval().CrossCheck(log, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Errorf("clean group flagged: %v", flagged)
	}
}

func TestCrossCheckEmptyLog(t *testing.T) {
	if _, err := evenEval().CrossCheck(CommitLog{}, 0.3); err == nil {
		t.Error("empty log accepted")
	}
}
