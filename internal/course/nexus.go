// Package course reproduces the course machinery of SoftEng 751 as the
// paper describes it: the research-teaching nexus model (Figure 1), the
// 12-week course structure (Figure 2), the assessment scheme (§III-C),
// the first-in-first-served doodle-poll topic allocation (§III-D), the
// subversion contribution-log assessment (§III-C, §IV-A), and the
// summative Likert evaluation (§V-A). These are the paper's actual
// exhibits; the simulations here regenerate each of them.
package course

import "fmt"

// Axis positions in Healey's research-teaching nexus (Figure 1). The
// model has two axes: whether the emphasis is on research CONTENT or on
// research PROCESSES, and whether students are AUDIENCE or PARTICIPANTS.
type (
	// Emphasis is the content/process axis.
	Emphasis int
	// Role is the audience/participant axis.
	Role int
)

// Axis values.
const (
	EmphasisContent Emphasis = iota
	EmphasisProcess
)

// Role values.
const (
	RoleAudience Role = iota
	RoleParticipant
)

// Quadrant is one cell of the nexus model.
type Quadrant int

// The four quadrants of Figure 1.
const (
	// ResearchLed: content emphasis, students as audience — teaching is
	// structured around subject content informed by staff research.
	ResearchLed Quadrant = iota
	// ResearchOriented: process emphasis, students as audience —
	// teaching the research ethos and methods.
	ResearchOriented
	// ResearchTutored: content emphasis, students as participants —
	// students write about and discuss research.
	ResearchTutored
	// ResearchBased: process emphasis, students as participants —
	// students undertake inquiry-based learning.
	ResearchBased
)

// String names the quadrant.
func (q Quadrant) String() string {
	switch q {
	case ResearchLed:
		return "research-led"
	case ResearchOriented:
		return "research-oriented"
	case ResearchTutored:
		return "research-tutored"
	case ResearchBased:
		return "research-based"
	default:
		return "unknown"
	}
}

// Classify maps axis positions to the quadrant, the content of Figure 1.
func Classify(e Emphasis, r Role) Quadrant {
	switch {
	case e == EmphasisContent && r == RoleAudience:
		return ResearchLed
	case e == EmphasisProcess && r == RoleAudience:
		return ResearchOriented
	case e == EmphasisContent && r == RoleParticipant:
		return ResearchTutored
	default:
		return ResearchBased
	}
}

// Activity is one course activity placed on the nexus.
type Activity struct {
	Name     string
	Emphasis Emphasis
	Role     Role
	// Present records whether SoftEng 751 includes the activity (the
	// paper notes research-oriented teaching is deliberately absent).
	Present bool
}

// Quadrant returns the activity's cell in the model.
func (a Activity) Quadrant() Quadrant { return Classify(a.Emphasis, a.Role) }

// SoftEng751Activities returns the paper's placement of the course's
// activities on the nexus (§III-E): lectures and in-class exercises are
// research-led; the group project is research-based; the presentations,
// class discussions and report are research-tutored; explicit research-
// methodology teaching is the one missing quadrant.
func SoftEng751Activities() []Activity {
	return []Activity{
		{Name: "lectures on PARC research", Emphasis: EmphasisContent, Role: RoleAudience, Present: true},
		{Name: "in-class programming exercises", Emphasis: EmphasisContent, Role: RoleAudience, Present: true},
		{Name: "group research project", Emphasis: EmphasisProcess, Role: RoleParticipant, Present: true},
		{Name: "group seminar presentations", Emphasis: EmphasisContent, Role: RoleParticipant, Present: true},
		{Name: "class discussions", Emphasis: EmphasisContent, Role: RoleParticipant, Present: true},
		{Name: "group report", Emphasis: EmphasisContent, Role: RoleParticipant, Present: true},
		{Name: "research methodology teaching", Emphasis: EmphasisProcess, Role: RoleAudience, Present: false},
	}
}

// NexusCoverage reports, for each quadrant, how many present activities
// land there — the "research-infused" claim is that three of the four
// quadrants are covered, with research-oriented deliberately empty.
func NexusCoverage(acts []Activity) map[Quadrant]int {
	cov := map[Quadrant]int{}
	for _, a := range acts {
		if a.Present {
			cov[a.Quadrant()]++
		}
	}
	return cov
}

// NexusRow is one line of the Figure 1 reproduction table.
type NexusRow struct {
	Activity string
	Quadrant Quadrant
	Present  bool
}

// NexusTable renders the classification as rows for the harness.
func NexusTable(acts []Activity) []NexusRow {
	rows := make([]NexusRow, len(acts))
	for i, a := range acts {
		rows[i] = NexusRow{Activity: a.Name, Quadrant: a.Quadrant(), Present: a.Present}
	}
	return rows
}

// String renders an activity for debugging.
func (a Activity) String() string {
	return fmt.Sprintf("%s [%s, present=%v]", a.Name, a.Quadrant(), a.Present)
}
