package course

import (
	"testing"
	"testing/quick"
)

func TestWishlist2013Valid(t *testing.T) {
	topics := Wishlist2013()
	if len(topics) != 10 {
		t.Fatalf("2013 wish-list has %d topics, want the paper's 10", len(topics))
	}
	android := 0
	for _, tp := range topics {
		if err := tp.Validate(); err != nil {
			t.Errorf("topic invalid: %v", err)
		}
		if tp.AndroidOption {
			android++
		}
	}
	// §IV-C marks four topics "(also available for Android)".
	if android != 4 {
		t.Errorf("android topics = %d, want 4", android)
	}
}

func TestSelectTopicsTopTen(t *testing.T) {
	wishlist := Wishlist2013()
	// Add weaker candidates that must not displace the paper's ten.
	wishlist = append(wishlist,
		Topic{Title: "Rewrite the lab's whole runtime", Proposer: "postgrad", Year: 2013,
			TimeframeFit: 1, Divisibility: 2, Independence: 1, LabInterest: 5},
		Topic{Title: "Port everything to Fortran", Proposer: "instructor", Year: 2011,
			TimeframeFit: 2, Divisibility: 2, Independence: 2, LabInterest: 1},
	)
	top := SelectTopics(wishlist, 10)
	if len(top) != 10 {
		t.Fatalf("selected %d", len(top))
	}
	for _, tp := range top {
		if tp.Title == "Rewrite the lab's whole runtime" || tp.Title == "Port everything to Fortran" {
			t.Errorf("unsuitable topic selected: %s", tp.Title)
		}
	}
	// Descending suitability.
	for i := 1; i < len(top); i++ {
		if top[i].Suitability() > top[i-1].Suitability() {
			t.Fatalf("selection not sorted at %d", i)
		}
	}
}

func TestSelectTopicsSkipsInvalid(t *testing.T) {
	wishlist := []Topic{
		{Title: "ok", TimeframeFit: 3, Divisibility: 3, Independence: 3, LabInterest: 3},
		{Title: "broken", TimeframeFit: 0, Divisibility: 3, Independence: 3, LabInterest: 3},
	}
	top := SelectTopics(wishlist, 10)
	if len(top) != 1 || top[0].Title != "ok" {
		t.Fatalf("selection = %v", top)
	}
}

func TestSelectTopicsDeterministicTies(t *testing.T) {
	mk := func(title string) Topic {
		return Topic{Title: title, TimeframeFit: 3, Divisibility: 3, Independence: 3, LabInterest: 3}
	}
	a := SelectTopics([]Topic{mk("zeta"), mk("alpha"), mk("mid")}, 3)
	b := SelectTopics([]Topic{mk("mid"), mk("zeta"), mk("alpha")}, 3)
	for i := range a {
		if a[i].Title != b[i].Title {
			t.Fatalf("tie-break not deterministic: %v vs %v", a, b)
		}
	}
	if a[0].Title != "alpha" {
		t.Fatalf("ties should order by title: %v", a)
	}
}

func TestSuitabilityMonotone(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		base := Topic{TimeframeFit: int(a%5) + 1, Divisibility: int(b%5) + 1,
			Independence: int(c%5) + 1, LabInterest: int(d%5) + 1}
		better := base
		if better.TimeframeFit < 5 {
			better.TimeframeFit++
			return better.Suitability() > base.Suitability()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBounds(t *testing.T) {
	bad := Topic{Title: "x", TimeframeFit: 6, Divisibility: 3, Independence: 3, LabInterest: 3}
	if bad.Validate() == nil {
		t.Error("score 6 accepted")
	}
}
