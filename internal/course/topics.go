package course

import (
	"fmt"
	"sort"
)

// The §III-D topic pipeline: the PARC lab "maintains a wish-list of
// 'todo' items that have been identified as suitable nugget-sized
// projects"; topics are collected in a shared document during the year
// (proposed by instructors and graduate students, or recycled from
// previous years) and reviewed at the start of the course to pick the
// top ten. Suitability weighs three stated factors: the time-frame
// (8 development weeks at one-quarter workload), divisibility among the
// group's members (needed for assessment), and being an "independent
// nugget" complementary to the lab's work but not requiring students to
// delve into the larger projects first.

// Topic is one wish-list entry.
type Topic struct {
	Title    string
	Proposer string // "instructor", "postgrad", or a name
	Year     int    // year first proposed (recycling is allowed)
	// The §III-D suitability factors, each scored 1-5 by the reviewers.
	TimeframeFit  int // completable in 8 weeks at quarter load
	Divisibility  int // splits evenly across 3 members
	Independence  int // startable without absorbing the lab's big projects
	LabInterest   int // how much PARC wants the outcome
	AndroidOption bool
}

// Validate checks the scores are on the 1-5 scale.
func (t Topic) Validate() error {
	for name, v := range map[string]int{
		"timeframe": t.TimeframeFit, "divisibility": t.Divisibility,
		"independence": t.Independence, "interest": t.LabInterest,
	} {
		if v < 1 || v > 5 {
			return fmt.Errorf("course: topic %q %s score %d outside [1,5]", t.Title, name, v)
		}
	}
	return nil
}

// Suitability is the review score: the three §III-D feasibility factors
// weighted equally, with lab interest as the tiebreaker weight.
func (t Topic) Suitability() float64 {
	return float64(t.TimeframeFit+t.Divisibility+t.Independence)*2 + float64(t.LabInterest)
}

// SelectTopics returns the n most suitable valid topics, ties broken by
// lab interest then title (deterministic). Invalid topics are skipped.
func SelectTopics(wishlist []Topic, n int) []Topic {
	var valid []Topic
	for _, t := range wishlist {
		if t.Validate() == nil {
			valid = append(valid, t)
		}
	}
	sort.Slice(valid, func(i, j int) bool {
		si, sj := valid[i].Suitability(), valid[j].Suitability()
		if si != sj {
			return si > sj
		}
		if valid[i].LabInterest != valid[j].LabInterest {
			return valid[i].LabInterest > valid[j].LabInterest
		}
		return valid[i].Title < valid[j].Title
	})
	if n > len(valid) {
		n = len(valid)
	}
	return valid[:n]
}

// Wishlist2013 returns the ten §IV-C sample topics as wish-list entries,
// scored per their descriptions (all ten were selected in 2013, so all
// score highly; the Android flags follow the paper's "(also available for
// Android)" annotations).
func Wishlist2013() []Topic {
	return []Topic{
		{Title: "Thumbnails of images in a folder", Proposer: "instructor", Year: 2013,
			TimeframeFit: 5, Divisibility: 4, Independence: 5, LabInterest: 4, AndroidOption: true},
		{Title: "Parallel quicksort", Proposer: "instructor", Year: 2012,
			TimeframeFit: 5, Divisibility: 4, Independence: 5, LabInterest: 3},
		{Title: "Parallelisation of simple computational kernels", Proposer: "postgrad", Year: 2013,
			TimeframeFit: 4, Divisibility: 5, Independence: 4, LabInterest: 4},
		{Title: "Search for a string in text files of a folder", Proposer: "instructor", Year: 2012,
			TimeframeFit: 5, Divisibility: 4, Independence: 5, LabInterest: 3, AndroidOption: true},
		{Title: "Reductions in Pyjama", Proposer: "postgrad", Year: 2013,
			TimeframeFit: 4, Divisibility: 4, Independence: 3, LabInterest: 5},
		{Title: "Task-aware libraries for Parallel Task", Proposer: "postgrad", Year: 2013,
			TimeframeFit: 4, Divisibility: 4, Independence: 3, LabInterest: 5},
		{Title: "PDF searching", Proposer: "instructor", Year: 2013,
			TimeframeFit: 4, Divisibility: 4, Independence: 5, LabInterest: 3, AndroidOption: true},
		{Title: "Understanding and coping with the Java memory model", Proposer: "instructor", Year: 2013,
			TimeframeFit: 4, Divisibility: 3, Independence: 5, LabInterest: 4},
		{Title: "Parallel use of collections", Proposer: "instructor", Year: 2012,
			TimeframeFit: 5, Divisibility: 4, Independence: 5, LabInterest: 3},
		{Title: "Fast web access through concurrent connections", Proposer: "postgrad", Year: 2013,
			TimeframeFit: 4, Divisibility: 3, Independence: 5, LabInterest: 4, AndroidOption: true},
	}
}
