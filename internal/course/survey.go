package course

import (
	"fmt"

	"parc751/internal/xrand"
)

// LikertResponse is one answer on the five-point scale used by the
// end-of-course summative evaluation (§V-A).
type LikertResponse int

// The five points of the scale.
const (
	StronglyDisagree LikertResponse = iota
	Disagree
	Neutral
	Agree
	StronglyAgree
)

// String names the response.
func (r LikertResponse) String() string {
	switch r {
	case StronglyDisagree:
		return "strongly disagree"
	case Disagree:
		return "disagree"
	case Neutral:
		return "neutral"
	case Agree:
		return "agree"
	case StronglyAgree:
		return "strongly agree"
	default:
		return "invalid"
	}
}

// Question is one survey item with its distribution over the scale.
type Question struct {
	Text   string
	Counts [5]int
}

// Respondents returns the total responses to the question.
func (q *Question) Respondents() int {
	n := 0
	for _, c := range q.Counts {
		n += c
	}
	return n
}

// Agreement returns the fraction of respondents who agreed or strongly
// agreed — the statistic the paper reports (95%, 95%, 92%).
func (q *Question) Agreement() float64 {
	n := q.Respondents()
	if n == 0 {
		return 0
	}
	return float64(q.Counts[Agree]+q.Counts[StronglyAgree]) / float64(n)
}

// Add records one response.
func (q *Question) Add(r LikertResponse) {
	if r < StronglyDisagree || r > StronglyAgree {
		panic(fmt.Sprintf("course: invalid Likert response %d", r))
	}
	q.Counts[r]++
}

// PaperTarget pairs a survey question with the agreement the paper
// reports for it.
type PaperTarget struct {
	Text      string
	Agreement float64 // reported fraction (SA+A)
}

// PaperTargets returns the three quantitative rows of §V-A.
func PaperTargets() []PaperTarget {
	return []PaperTarget{
		{"The objectives of the lectures were clearly explained", 0.95},
		{"The lecturer stimulated my engagement in the learning process", 0.95},
		{"The class discussions were effective in helping me learn", 0.92},
	}
}

// ExactSurvey constructs each question's response counts to match the
// paper's reported agreement exactly for n respondents (agreeing
// responses split 60/40 between agree and strongly agree; the remainder
// split between neutral and disagree). This is the deterministic
// reproduction of the §V-A table.
func ExactSurvey(n int, targets []PaperTarget) []Question {
	out := make([]Question, len(targets))
	for i, t := range targets {
		agreeTotal := int(t.Agreement*float64(n) + 0.5)
		agree := agreeTotal * 6 / 10
		sa := agreeTotal - agree
		rest := n - agreeTotal
		neutral := rest/2 + rest%2
		disagree := rest / 2
		out[i] = Question{Text: t.Text}
		out[i].Counts[Agree] = agree
		out[i].Counts[StronglyAgree] = sa
		out[i].Counts[Neutral] = neutral
		out[i].Counts[Disagree] = disagree
	}
	return out
}

// SimulatedSurvey draws n student responses per question from a
// distribution whose expected agreement matches the target — the
// stochastic cohort model (measured agreement lands near, not exactly on,
// the paper's number; EXPERIMENTS.md records both).
func SimulatedSurvey(seed uint64, n int, targets []PaperTarget) []Question {
	r := xrand.New(seed)
	out := make([]Question, len(targets))
	for i, t := range targets {
		out[i] = Question{Text: t.Text}
		for s := 0; s < n; s++ {
			u := r.Float64()
			switch {
			case u < t.Agreement*0.4:
				out[i].Add(StronglyAgree)
			case u < t.Agreement:
				out[i].Add(Agree)
			case u < t.Agreement+(1-t.Agreement)*0.7:
				out[i].Add(Neutral)
			default:
				out[i].Add(Disagree)
			}
		}
	}
	return out
}

// OpenComments returns the §V-A free-text comments quoted in the paper,
// used by the course simulator's report output.
func OpenComments() []string {
	return []string{
		"The presentations were good practice and watching them was informative",
		"Keep up the interaction with all of the groups",
		"The project that was part of the course was very helpful",
		"This course was full of project work. It helped me to learn and explore the concepts in Java. It also helped me to develop my presentation skills.",
		"Individual meeting time can be extended so that more research oriented discussion can be done. I personally feel this course is very good to perform research hence more time should be devoted by the lecturer during individual meeting.",
	}
}
