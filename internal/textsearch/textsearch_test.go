package textsearch

import (
	"sort"
	"sync"
	"testing"
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/workload"
)

func newRT(t *testing.T, workers int) *ptask.Runtime {
	t.Helper()
	rt := ptask.NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestSequentialFindsAllNeedles(t *testing.T) {
	spec := workload.DefaultFolderSpec(5)
	folder, needles := workload.GenFolder(spec)
	got := Sequential(folder, Literal(spec.NeedleWord))
	if len(got) != needles {
		t.Fatalf("found %d matches, planted %d", len(got), needles)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	spec := workload.DefaultFolderSpec(6)
	folder, _ := workload.GenFolder(spec)
	want := Sequential(folder, Literal(spec.NeedleWord))
	for _, workers := range []int{1, 2, 4} {
		rt := ptask.NewRuntime(workers)
		got := NewSearcher(rt).Search(folder, Literal(spec.NeedleWord), Options{})
		rt.Shutdown()
		if len(got) != len(want) {
			t.Fatalf("w=%d: %d matches, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("w=%d: match %d = %+v, want %+v (order not deterministic)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRegexpSearch(t *testing.T) {
	folder := &workload.Folder{Files: []workload.TextFile{
		{Path: "a.txt", Lines: []string{"alpha beta", "gamma delta", "beta999"}},
		{Path: "b.txt", Lines: []string{"nothing here", "beta42 tail"}},
	}}
	m, err := CompileRegexp(`beta\d+`)
	if err != nil {
		t.Fatal(err)
	}
	got := Sequential(folder, m)
	if len(got) != 2 {
		t.Fatalf("regexp matches = %d, want 2", len(got))
	}
	if got[0].Path != "a.txt" || got[0].Line != 3 {
		t.Fatalf("first match = %+v", got[0])
	}
	if got[1].Path != "b.txt" || got[1].Line != 2 {
		t.Fatalf("second match = %+v", got[1])
	}
}

func TestCompileRegexpError(t *testing.T) {
	if _, err := CompileRegexp("("); err == nil {
		t.Fatal("bad regexp compiled")
	}
}

func TestLineNumbersOneBased(t *testing.T) {
	folder := &workload.Folder{Files: []workload.TextFile{
		{Path: "x", Lines: []string{"needle", "no", "needle"}},
	}}
	got := Sequential(folder, Literal("needle"))
	if len(got) != 2 || got[0].Line != 1 || got[1].Line != 3 {
		t.Fatalf("matches = %+v", got)
	}
}

func TestStreamingDeliversEveryMatch(t *testing.T) {
	rt := newRT(t, 4)
	spec := workload.DefaultFolderSpec(7)
	spec.NumFiles = 60
	folder, needles := workload.GenFolder(spec)
	var mu sync.Mutex
	var streamed []Match
	got := NewSearcher(rt).Search(folder, Literal(spec.NeedleWord), Options{
		OnMatch: func(m Match) {
			mu.Lock()
			streamed = append(streamed, m)
			mu.Unlock()
		},
	})
	// Streaming callbacks ride notify handlers that may trail Results.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(streamed)
		mu.Unlock()
		if n == needles {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("streamed %d of %d matches", n, needles)
		case <-time.After(time.Millisecond):
		}
	}
	if len(got) != needles {
		t.Fatalf("returned %d of %d", len(got), needles)
	}
	// The streamed multiset equals the returned one.
	key := func(m Match) string { return m.Path + ":" + m.Text }
	a := make([]string, 0, needles)
	b := make([]string, 0, needles)
	for i := range got {
		a = append(a, key(got[i]))
		b = append(b, key(streamed[i]))
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streamed set differs at %d", i)
		}
	}
}

func TestStreamingOnEventLoop(t *testing.T) {
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	folder := &workload.Folder{Files: []workload.TextFile{
		{Path: "x", Lines: []string{"needle here"}},
	}}
	onLoop := make(chan bool, 1)
	NewSearcher(rt).Search(folder, Literal("needle"), Options{
		OnMatch: func(m Match) { onLoop <- loop.OnDispatchThread() },
	})
	select {
	case ok := <-onLoop:
		if !ok {
			t.Fatal("match not delivered on dispatch thread")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("match never streamed")
	}
}

func TestUIResponsiveDuringSearch(t *testing.T) {
	// The project's defining requirement: with the search running on the
	// task pool, event-loop probes stay fast.
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	spec := workload.DefaultFolderSpec(9)
	spec.NumFiles = 400
	folder, _ := workload.GenFolder(spec)
	done := make(chan struct{})
	go func() {
		NewSearcher(rt).Search(folder, Literal(spec.NeedleWord), Options{})
		close(done)
	}()
	res := loop.Probe(500*time.Microsecond, 20)
	<-done
	if res.Max() > time.Second {
		t.Errorf("UI latency %v while searching off-thread", res.Max())
	}
}

func TestLimitStopsEarly(t *testing.T) {
	rt := newRT(t, 2)
	spec := workload.DefaultFolderSpec(11)
	spec.NeedleRate = 0.2 // dense needles
	folder, needles := workload.GenFolder(spec)
	if needles < 100 {
		t.Skip("workload did not generate enough needles")
	}
	got := NewSearcher(rt).Search(folder, Literal(spec.NeedleWord), Options{Limit: 10})
	if len(got) < 10 {
		t.Fatalf("limit search found %d, want >= 10", len(got))
	}
	if len(got) >= needles {
		t.Fatalf("limit had no effect: %d of %d", len(got), needles)
	}
}

func TestCount(t *testing.T) {
	rt := newRT(t, 2)
	spec := workload.DefaultFolderSpec(13)
	folder, needles := workload.GenFolder(spec)
	if got := NewSearcher(rt).Count(folder, Literal(spec.NeedleWord)); got != needles {
		t.Fatalf("Count = %d, want %d", got, needles)
	}
}

func TestNoMatches(t *testing.T) {
	rt := newRT(t, 2)
	folder := &workload.Folder{Files: []workload.TextFile{
		{Path: "x", Lines: []string{"nothing"}},
	}}
	if got := NewSearcher(rt).Search(folder, Literal("absent-word"), Options{}); len(got) != 0 {
		t.Fatalf("found %d phantom matches", len(got))
	}
}

func TestEmptyFolder(t *testing.T) {
	rt := newRT(t, 2)
	got := NewSearcher(rt).Search(&workload.Folder{}, Literal("x"), Options{})
	if len(got) != 0 {
		t.Fatal("matches in empty folder")
	}
}

func BenchmarkSequentialSearch(b *testing.B) {
	spec := workload.DefaultFolderSpec(1)
	folder, _ := workload.GenFolder(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(folder, Literal(spec.NeedleWord))
	}
}

func BenchmarkParallelSearch(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	spec := workload.DefaultFolderSpec(1)
	folder, _ := workload.GenFolder(spec)
	s := NewSearcher(rt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(folder, Literal(spec.NeedleWord), Options{})
	}
}

func BenchmarkRegexpSearch(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	spec := workload.DefaultFolderSpec(1)
	folder, _ := workload.GenFolder(spec)
	m, _ := CompileRegexp("concurrency[A-Z]+")
	s := NewSearcher(rt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(folder, m, Options{})
	}
}
