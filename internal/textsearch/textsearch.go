// Package textsearch is project 4 of the reproduced paper: "search for a
// string in text files of a folder", a small GUI application whose search
// runs in parallel without blocking the user interface, displaying
// (file, line) pairs while the search is still in progress.
//
// The search operates over the in-memory folder trees produced by
// internal/workload (the students used their own disks; the substitution
// is documented in DESIGN.md). Matching supports literal substrings and
// regular expressions, mirrors the project statement, and streams interim
// matches through Parallel Task's per-sub-task notification mechanism.
package textsearch

import (
	"regexp"
	"strings"
	"sync/atomic"

	"parc751/internal/ptask"
	"parc751/internal/workload"
)

// Match is one hit: a file path, 1-based line number, and the line text.
type Match struct {
	Path string
	Line int
	Text string
}

// Matcher decides whether a line matches the query.
type Matcher interface {
	// MatchLine reports whether the line contains a hit.
	MatchLine(s string) bool
}

// Literal matches lines containing the substring.
type Literal string

// MatchLine implements Matcher.
func (l Literal) MatchLine(s string) bool { return strings.Contains(s, string(l)) }

// Regexp matches lines against a compiled regular expression.
type Regexp struct{ Re *regexp.Regexp }

// CompileRegexp builds a Regexp matcher.
func CompileRegexp(pattern string) (Regexp, error) {
	re, err := regexp.Compile(pattern)
	return Regexp{Re: re}, err
}

// MatchLine implements Matcher.
func (r Regexp) MatchLine(s string) bool { return r.Re.MatchString(s) }

// Sequential scans every file in order — the baseline.
func Sequential(f *workload.Folder, m Matcher) []Match {
	var out []Match
	for _, file := range f.Files {
		out = append(out, searchFile(&file, m)...)
	}
	return out
}

func searchFile(file *workload.TextFile, m Matcher) []Match {
	var out []Match
	for i, line := range file.Lines {
		if m.MatchLine(line) {
			out = append(out, Match{Path: file.Path, Line: i + 1, Text: line})
		}
	}
	return out
}

// Options configures a parallel search.
type Options struct {
	// OnMatch, if non-nil, receives every match as it is found. With an
	// event loop registered on the runtime, delivery happens on the
	// dispatch thread (the interim-results UI feature of the project).
	OnMatch func(Match)
	// Limit, if positive, cancels the search after this many matches
	// have been observed (best-effort: files already running finish
	// their current line).
	Limit int64
}

// Searcher runs parallel searches over a folder with one Parallel Task
// multi-task per search (one sub-task per file).
type Searcher struct {
	rt *ptask.Runtime
}

// NewSearcher wraps a runtime.
func NewSearcher(rt *ptask.Runtime) *Searcher { return &Searcher{rt: rt} }

// Search scans the folder in parallel. The returned slice is in
// deterministic (file order, line order) regardless of execution
// interleaving; streaming callbacks observe completion order instead.
func (s *Searcher) Search(f *workload.Folder, m Matcher, opt Options) []Match {
	var seen atomic.Int64
	stop := func() bool {
		return opt.Limit > 0 && seen.Load() >= opt.Limit
	}
	multi := ptask.RunMulti(s.rt, len(f.Files), func(i int) ([]Match, error) {
		if stop() {
			return nil, nil
		}
		file := &f.Files[i]
		var out []Match
		for li, line := range file.Lines {
			if stop() {
				break
			}
			if m.MatchLine(line) {
				out = append(out, Match{Path: file.Path, Line: li + 1, Text: line})
				seen.Add(1)
			}
		}
		return out, nil
	})
	if opt.OnMatch != nil {
		multi.NotifyEach(func(_ int, ms []Match, err error) {
			for _, match := range ms {
				opt.OnMatch(match)
			}
		})
	}
	perFile, _ := multi.Results()
	var out []Match
	for _, ms := range perFile {
		out = append(out, ms...)
	}
	return out
}

// Count returns only the number of matches, the cheap aggregate used by
// benchmarks.
func (s *Searcher) Count(f *workload.Folder, m Matcher) int {
	return len(s.Search(f, m, Options{}))
}
