package parc751

// The benchmark harness: one benchmark per paper exhibit (regenerating it
// through the experiments registry) plus the ablation studies A1-A5 from
// DESIGN.md §5. Experiment benches report a `findings_ok` metric (1 = all
// paper-shape findings held); ablation benches report the quantity under
// study (virtual makespans, throughputs) via b.ReportMetric.

import (
	"fmt"
	"sync"
	"testing"

	"parc751/internal/collections"
	"parc751/internal/experiments"
	"parc751/internal/machine"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.QuickConfig()
	allOK := 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if !res.AllPassed() {
			allOK = 0
		}
	}
	b.ReportMetric(allOK, "findings_ok")
}

// ---- One benchmark per paper exhibit ----

func BenchmarkF1Nexus(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2Calendar(b *testing.B)    { benchExperiment(b, "F2") }
func BenchmarkTAssessment(b *testing.B)   { benchExperiment(b, "TASSESS") }
func BenchmarkAllocation(b *testing.B)    { benchExperiment(b, "EALLOC") }
func BenchmarkProtocolAudit(b *testing.B) { benchExperiment(b, "EPROTO") }
func BenchmarkCurriculum(b *testing.B)    { benchExperiment(b, "ECURR") }
func BenchmarkLikert(b *testing.B)        { benchExperiment(b, "ELIKERT") }
func BenchmarkP1Thumbnails(b *testing.B)  { benchExperiment(b, "P1") }
func BenchmarkP2Quicksort(b *testing.B)   { benchExperiment(b, "P2") }
func BenchmarkP3Kernels(b *testing.B)     { benchExperiment(b, "P3") }
func BenchmarkP4TextSearch(b *testing.B)  { benchExperiment(b, "P4") }
func BenchmarkP5Reductions(b *testing.B)  { benchExperiment(b, "P5") }
func BenchmarkP6TaskSafe(b *testing.B)    { benchExperiment(b, "P6") }
func BenchmarkP7PDFSearch(b *testing.B)   { benchExperiment(b, "P7") }
func BenchmarkP8MemModel(b *testing.B)    { benchExperiment(b, "P8") }
func BenchmarkP9Collections(b *testing.B) { benchExperiment(b, "P9") }
func BenchmarkP10WebFetch(b *testing.B)   { benchExperiment(b, "P10") }

// ---- Ablation A1: work-stealing vs global queue (DESIGN.md §5) ----
//
// The simulator sub-benches report virtual makespans; the realpool
// sub-bench drives the actual work-stealing runtime through the A1
// registry experiment and asserts on its scheduler snapshot findings
// (task conservation, observed steals, targeted wakeups).

func BenchmarkA1SchedulerAblation(b *testing.B) {
	b.Run("realpool", func(b *testing.B) {
		e, ok := experiments.ByID("A1")
		if !ok {
			b.Fatal("A1 experiment not registered")
		}
		cfg := experiments.QuickConfig()
		var steals, parks float64
		for i := 0; i < b.N; i++ {
			res := e.Run(cfg)
			if !res.AllPassed() {
				b.Fatalf("A1 scheduler findings failed: %v", res.FailedFindings())
			}
			steals = res.Metrics["pool_steals"]
			parks = res.Metrics["pool_parks"]
		}
		b.ReportMetric(steals, "steals")
		b.ReportMetric(parks, "parks")
	})
	costs := make([]uint64, 1024)
	for i := range costs {
		costs[i] = 300 + uint64(i%7)*100
	}
	for _, mode := range []struct {
		name string
		cfg  machine.Config
	}{
		{"worksteal", machine.Config{Name: "ws", Procs: 16, SpeedFactor: 1, StealLatency: 200}},
		{"globalqueue", machine.Config{Name: "gq", Procs: 16, SpeedFactor: 1, GlobalQueue: true, GlobalQueueNs: 250}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var makespan uint64
			for i := 0; i < b.N; i++ {
				makespan = machine.RunTasks(mode.cfg, costs, true).Makespan
			}
			b.ReportMetric(float64(makespan), "virtual_ns")
		})
	}
}

// ---- Ablation A2: Pyjama dynamic-schedule chunk size ----

func BenchmarkA2ChunkSize(b *testing.B) {
	const n = 100000
	work := make([]int, n)
	for _, chunk := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pyjama.ParallelFor(4, n, pyjama.Dynamic(chunk), func(j int) {
					work[j]++
				})
			}
		})
	}
}

// ---- Ablation A3: multi-task fan-out vs recursive spawning ----

func BenchmarkA3DecompositionShape(b *testing.B) {
	const totalWork = 1 << 20
	const leafWork = 4096
	leaves := totalWork / leafWork
	cfg := machine.Config{Name: "a3", Procs: 16, SpeedFactor: 1,
		SpawnOverhead: 200, StealLatency: 400}

	b.Run("flat-fanout", func(b *testing.B) {
		var makespan uint64
		for i := 0; i < b.N; i++ {
			m := machine.New(cfg)
			m.Submit(0, 100, func(ctx *machine.Ctx) {
				for l := 0; l < leaves; l++ {
					ctx.Spawn(leafWork, nil)
				}
			})
			makespan = m.Run().Makespan
		}
		b.ReportMetric(float64(makespan), "virtual_ns")
	})
	b.Run("recursive", func(b *testing.B) {
		var makespan uint64
		for i := 0; i < b.N; i++ {
			m := machine.New(cfg)
			var spawn func(ctx *machine.Ctx, size int)
			spawn = func(ctx *machine.Ctx, size int) {
				if size <= leafWork {
					return
				}
				half := size / 2
				ctx.Spawn(uint64(half/64), func(c *machine.Ctx) { spawn(c, half) })
				ctx.Spawn(uint64((size-half)/64), func(c *machine.Ctx) { spawn(c, size-half) })
			}
			m.Submit(0, 100, func(ctx *machine.Ctx) { spawn(ctx, totalWork) })
			makespan = m.Run().Makespan
		}
		b.ReportMetric(float64(makespan), "virtual_ns")
	})
}

// ---- Ablation A4: sharding degree of the concurrent map ----

func BenchmarkA4ShardDegree(b *testing.B) {
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			m := collections.NewShardedMap[int, int](shards)
			for i := 0; i < 1024; i++ {
				m.Put(i, i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%5 == 0 {
						m.Put(i%1024, i)
					} else {
						m.Get(i % 1024)
					}
					i++
				}
			})
		})
	}
}

// ---- Ablation A5: steal-latency sensitivity of the simulated machine ----

func BenchmarkA5StealLatency(b *testing.B) {
	costs := make([]uint64, 512)
	for i := range costs {
		costs[i] = 500
	}
	for _, lat := range []uint64{0, 200, 1000, 5000} {
		b.Run(fmt.Sprintf("lat%d", lat), func(b *testing.B) {
			cfg := machine.Config{Name: "a5", Procs: 8, SpeedFactor: 1, StealLatency: lat}
			var makespan uint64
			for i := 0; i < b.N; i++ {
				// All work seeded on processor 0: maximal stealing.
				makespan = machine.RunTasks(cfg, costs, false).Makespan
			}
			b.ReportMetric(float64(makespan), "virtual_ns")
		})
	}
}

// ---- Ablation A6: Pyjama schedule choice on uniform vs skewed loops ----
//
// Drives the A6 registry experiment (static/dynamic/guided/auto over both
// cost profiles, observed through RegionStats) and reports the claim
// counts plus auto's measured spread on the skewed loop.

func BenchmarkA6ScheduleAblation(b *testing.B) {
	e, ok := experiments.ByID("A6")
	if !ok {
		b.Fatal("A6 experiment not registered")
	}
	cfg := experiments.QuickConfig()
	var dynChunks, guidedChunks, spread float64
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if !res.AllPassed() {
			b.Fatalf("A6 schedule findings failed: %v", res.FailedFindings())
		}
		dynChunks = res.Metrics["a6_dynamic_chunks"]
		guidedChunks = res.Metrics["a6_guided_chunks"]
		spread = res.Metrics["a6_skewed_spread"]
	}
	b.ReportMetric(dynChunks, "dynamic_chunks")
	b.ReportMetric(guidedChunks, "guided_chunks")
	b.ReportMetric(spread, "skewed_spread")
}

// ---- Ablation A8: chaos harness (DESIGN.md §10) ----
//
// Drives the A8 registry experiment: seeded fault plans replayed over
// quicksort, thumbnails, and webfetch, asserting the failure-semantics
// invariants (no deadlock, no lost future, exactly-once error surfacing,
// deterministic replay) on every iteration.

func BenchmarkA8Chaos(b *testing.B) {
	e, ok := experiments.ByID("A8")
	if !ok {
		b.Fatal("A8 experiment not registered")
	}
	cfg := experiments.QuickConfig()
	var checks float64
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if !res.AllPassed() {
			b.Fatalf("A8 chaos findings failed: %v", res.FailedFindings())
		}
		checks = res.Metrics["checks_passed"]
	}
	b.ReportMetric(checks, "checks_passed")
}

// ---- Model-overhead comparison: cost per task/iteration in each model ----

func BenchmarkModelOverheadPTask(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptask.Run(rt, func() (struct{}, error) { return struct{}{}, nil }).Result()
	}
}

func BenchmarkModelOverheadPyjamaRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pyjama.Parallel(4, func(tc *pyjama.TC) {})
	}
}

func BenchmarkModelOverheadGoroutine(b *testing.B) {
	done := make(chan struct{})
	for i := 0; i < b.N; i++ {
		go func() { done <- struct{}{} }()
		<-done
	}
}

// ---- End-to-end throughput benches over the real runtimes ----

func BenchmarkEndToEndTextSearch(b *testing.B) {
	spec := workload.DefaultFolderSpec(1)
	folder, _ := workload.GenFolder(spec)
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		var mu sync.Mutex
		pyjama.ParallelFor(4, len(folder.Files), pyjama.Dynamic(4), func(fi int) {
			local := 0
			for _, line := range folder.Files[fi].Lines {
				if len(line) > 0 && line[0] == 'c' {
					local++
				}
			}
			mu.Lock()
			count += local
			mu.Unlock()
		})
		total = count
	}
	_ = total
}
