package parc751

// Integration tests: end-to-end scenarios that cross module boundaries the
// way the student projects did — an interactive app combining the event
// loop, the Parallel Task runtime and a workload; Pyjama regions feeding
// reductions and shared caches; the course machinery running a full
// semester; the simulated machine cross-checked against analytic bounds.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/android"
	"parc751/internal/collections"
	"parc751/internal/course"
	"parc751/internal/eventloop"
	"parc751/internal/kernels"
	"parc751/internal/machine"
	"parc751/internal/patterns"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
	"parc751/internal/sortalgo"
	"parc751/internal/textsearch"
	"parc751/internal/thumbs"
	"parc751/internal/workload"
)

// TestInteractiveSearchApplication is the project-4 application end to
// end: a GUI loop, a task runtime, a synthetic corpus, streamed matches,
// progress reporting, and a responsive UI throughout.
func TestInteractiveSearchApplication(t *testing.T) {
	loop := eventloop.New()
	defer loop.Close()
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	rt.SetEventLoop(loop)

	spec := workload.DefaultFolderSpec(2026)
	spec.NumFiles = 150
	folder, planted := workload.GenFolder(spec)

	// The "status bar": mutated only on the dispatch thread.
	var statusUpdates atomic.Int32
	prog := ptask.NewProgress[string](rt)
	prog.Notify(func(string) {
		if !loop.OnDispatchThread() {
			t.Error("status update off the dispatch thread")
		}
		statusUpdates.Add(1)
	})

	var streamed atomic.Int32
	searcher := textsearch.NewSearcher(rt)
	done := make(chan []textsearch.Match, 1)
	go func() {
		matches := searcher.Search(folder, textsearch.Literal(spec.NeedleWord), textsearch.Options{
			OnMatch: func(m textsearch.Match) { streamed.Add(1) },
		})
		prog.Publish(fmt.Sprintf("done: %d matches", len(matches)))
		done <- matches
	}()

	probe := loop.Probe(300*time.Microsecond, 15)
	matches := <-done
	if len(matches) != planted {
		t.Fatalf("found %d of %d planted needles", len(matches), planted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for (streamed.Load() != int32(planted) || statusUpdates.Load() == 0) &&
		time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if streamed.Load() != int32(planted) {
		t.Fatalf("streamed %d of %d", streamed.Load(), planted)
	}
	if statusUpdates.Load() == 0 {
		t.Fatal("progress status never delivered")
	}
	if probe.Max() > time.Second {
		t.Errorf("UI stalled during search: %v", probe.Max())
	}
}

// TestPyjamaKernelWithSharedCache runs a Pyjama team whose members memoise
// expensive results in a task-safe shared map — the project-6 discipline
// inside a project-3 kernel.
func TestPyjamaKernelWithSharedCache(t *testing.T) {
	cache := collections.NewShardedMap[int, float64](8)
	var computes atomic.Int32
	expensive := func(k int) float64 {
		computes.Add(1)
		return float64(k * k)
	}
	var sum atomic.Int64
	pyjama.ParallelFor(4, 10000, pyjama.Dynamic(64), func(i int) {
		k := i % 50 // heavy key reuse
		v := cache.GetOrCompute(k, func() float64 { return expensive(k) })
		sum.Add(int64(v))
	})
	if computes.Load() != 50 {
		t.Fatalf("computed %d values, want exactly 50 (GetOrCompute must dedupe)", computes.Load())
	}
	want := int64(0)
	for i := 0; i < 10000; i++ {
		k := i % 50
		want += int64(k * k)
	}
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// TestFullCourseSemester drives the course machinery end to end: groups
// form, topics allocate, seminars schedule, commit logs and peer
// evaluations combine into final grades, and the survey is aggregated.
func TestFullCourseSemester(t *testing.T) {
	poll := course.DefaultPoll()
	groups := course.FormGroups(2013, 60, 3, poll)
	alloc := course.Allocate(poll, groups)
	if len(alloc.Unplaced) != 0 {
		t.Fatalf("allocation left groups unplaced: %v", alloc.Unplaced)
	}

	slots := course.SeminarCalendar(3)
	reqs := make([]course.SlotRequest, len(groups))
	for i, g := range groups {
		reqs[i] = course.SlotRequest{GroupID: g.ID, Arrival: g.Arrival,
			Prefs: course.AllSlotsPrefs(len(slots))}
	}
	sched := course.ScheduleSeminars(slots, reqs)
	if len(sched.Unassigned) != 0 {
		t.Fatalf("seminar scheduling failed: %v", sched.Unassigned)
	}

	// One group's assessment: balanced commits, consensual peers.
	log := course.CommitLog{CommitsByMember: map[string]int{"a": 34, "b": 33, "c": 33}}
	if ok, err := log.Balanced(0.05); err != nil || !ok {
		t.Fatalf("balanced log rejected: %v %v", ok, err)
	}
	pe := course.PeerEvaluation{
		Members: []string{"a", "b", "c"},
		Ratings: map[string]map[string]float64{
			"a": {"b": 4, "c": 4}, "b": {"a": 4, "c": 4}, "c": {"a": 4, "b": 4},
		},
	}
	if err := pe.Validate(); err != nil {
		t.Fatal(err)
	}
	marks := pe.AdjustedMarks(82, 0.5)
	scheme := course.AssessmentScheme()
	final := course.FinalGrade(scheme, map[string]float64{
		"Test 1 (week 6)":            75,
		"Group seminar (weeks 7-10)": 80,
		"Test 2 (week 11)":           70,
		"Project implementation":     marks["a"],
		"Project report":             78,
	})
	if final <= 0 || final > 100 {
		t.Fatalf("final grade = %g", final)
	}

	exact := course.ExactSurvey(60, course.PaperTargets())
	if agreement := exact[0].Agreement(); agreement < 0.94 || agreement > 0.96 {
		t.Fatalf("survey agreement = %g", agreement)
	}
}

// TestSimulatorAgainstAnalyticBounds cross-checks the simulated machine
// against closed-form schedules: equal independent tasks on p processors
// must hit the work bound exactly, and the traced schedule must account
// for every virtual nanosecond of busy time.
func TestSimulatorAgainstAnalyticBounds(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		n := 8 * p
		costs := make([]uint64, n)
		for i := range costs {
			costs[i] = 1000
		}
		m := machine.New(machine.Config{Name: "x", Procs: p, SpeedFactor: 1})
		m.EnableTrace()
		for i, c := range costs {
			m.Submit(i%p, c, nil)
		}
		st := m.Run()
		if want := uint64(n) * 1000 / uint64(p); st.Makespan != want {
			t.Fatalf("p=%d makespan = %d, want %d", p, st.Makespan, want)
		}
		var traced uint64
		for _, s := range m.Trace().Spans {
			traced += s.End - s.Start
		}
		if traced != st.BusyNs {
			t.Fatalf("p=%d traced busy %d != stats %d", p, traced, st.BusyNs)
		}
	}
}

// TestPatternsOverKernels plugs a real kernel into the pattern skeletons:
// the farm renders thumbnails, the switchable mapper scales matmul rows.
func TestPatternsOverKernels(t *testing.T) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()

	imgs := workload.GenImageSet(5, 12, 16, 48)
	farm := patterns.Farm[*workload.Image, *workload.Image]{
		RT:   rt,
		Work: func(im *workload.Image) (*workload.Image, error) { return thumbs.Scale(im, 8, 8), nil },
	}
	outs, err := farm.Process(imgs)
	if err != nil {
		t.Fatal(err)
	}
	want := thumbs.Sequential(imgs, 8, 8)
	for i := range want {
		for p := range want[i].Pix {
			if outs[i].Pix[p] != want[i].Pix[p] {
				t.Fatalf("farm thumbnail %d differs", i)
			}
		}
	}

	a := kernels.RandomMatrix(1, 64, 64)
	b := kernels.RandomMatrix(2, 64, 64)
	seq := kernels.MatMulSequential(a, b)
	c := kernels.NewMatrix(64, 64)
	mapper := patterns.Switchable{
		Seq:       patterns.SeqMapper{},
		Par:       patterns.ChunkedMapper{RT: rt, Chunk: 8},
		Threshold: 16,
	}
	mapper.Map(64, func(i int) {
		crow := c.Row(i)
		for k := 0; k < 64; k++ {
			aik := a.At(i, k)
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	})
	if kernels.MaxAbsDiff(seq, c) != 0 {
		t.Fatal("switchable-mapped matmul differs from sequential")
	}
}

// TestAndroidThumbnailApp is the P1 second group's application shape:
// AsyncTask rendering with progress on the main looper.
func TestAndroidThumbnailApp(t *testing.T) {
	main := android.NewLooper()
	defer main.Quit()
	imgs := workload.GenImageSet(9, 10, 16, 32)
	var progress atomic.Int32
	task := android.NewAsyncTask[[]*workload.Image, int, []*workload.Image](main)
	task.OnProgressUpdate = func(int) {
		if !main.IsCurrent() {
			t.Error("progress off the main looper")
		}
		progress.Add(1)
	}
	task.DoInBackground = func(tk *android.AsyncTask[[]*workload.Image, int, []*workload.Image], in []*workload.Image) []*workload.Image {
		out := make([]*workload.Image, len(in))
		for i, im := range in {
			out[i] = thumbs.Scale(im, 8, 8)
			tk.PublishProgress(i)
		}
		return out
	}
	task.Execute(imgs)
	out, err := task.Get()
	if err != nil || len(out) != len(imgs) {
		t.Fatalf("asynctask result: %d, %v", len(out), err)
	}
	android.NewHandler(main).PostAndWait(func() {})
	if progress.Load() != int32(len(imgs)) {
		t.Fatalf("progress updates = %d", progress.Load())
	}
}

// TestParctraceCLIRoundTrip exercises the schedule-replay debugger the
// way a user does — through the real binary: build cmd/parctrace, record
// a seeded chaos run to a trace file, inspect it with dump, render the
// HTML viewer, and replay it expecting a bit-identical verdict.
func TestParctraceCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "parctrace")
	build := exec.Command("go", "build", "-o", bin, "./cmd/parctrace")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building parctrace: %v\n%s", err, out)
	}
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("parctrace %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	trace := filepath.Join(dir, "trace.json")
	recOut := run("record", "-workload", "thumbs", "-n", "10", "-seed", "424", "-chaos", "-o", trace)
	if !strings.Contains(recOut, "recorded") {
		t.Fatalf("record output: %s", recOut)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}

	dumpOut := run("dump", trace)
	for _, want := range []string{"schema parc751/trace/v1", "workload thumbs", "faults", "#"} {
		if !strings.Contains(dumpOut, want) {
			t.Fatalf("dump output missing %q:\n%s", want, dumpOut)
		}
	}

	html := filepath.Join(dir, "trace.html")
	run("render", trace, "-o", html)
	page, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!doctype html>", "<svg", "trace-data", "</html>"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("rendered page missing %q", want)
		}
	}

	replayOut := run("-replay", trace)
	if !strings.Contains(replayOut, "reproduced the recorded schedule") {
		t.Fatalf("replay output: %s", replayOut)
	}

	// A divergence must be detected: corrupt a deterministic count and
	// expect replay to fail with a canonical diff.
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(raw), `"complete": 10`, `"complete": 11`, 1)
	if bad == string(raw) {
		t.Fatal("corruption target not found in trace (complete count moved?)")
	}
	badFile := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badFile, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-replay", badFile)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted trace replayed cleanly:\n%s", out)
	}
	if !strings.Contains(string(out), "canonical traces differ") {
		t.Fatalf("divergence not diagnosed:\n%s", out)
	}
}

// TestSortUnderReductionVerification sorts with every implementation and
// verifies via a parallel reduction that order and multiset both hold —
// two models validating each other.
func TestSortUnderReductionVerification(t *testing.T) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	base := workload.IntArray(77, 30000, 1000)
	var wantSum int64
	for _, v := range base {
		wantSum += int64(v)
	}
	for name, sorter := range map[string]func([]int){
		"ptask":  func(xs []int) { sortalgo.PTask(rt, xs, 512) },
		"pyjama": func(xs []int) { sortalgo.Pyjama(3, xs, 512) },
	} {
		xs := append([]int(nil), base...)
		sorter(xs)
		sum := reduction.Parallel(4, len(xs), reduction.Sum[int64](),
			func(i int) int64 { return int64(xs[i]) })
		if sum != wantSum {
			t.Fatalf("%s: element sum changed: %d != %d", name, sum, wantSum)
		}
		sortedPar := reduction.Parallel(4, len(xs)-1, reduction.And(),
			func(i int) bool { return xs[i] <= xs[i+1] })
		if !sortedPar {
			t.Fatalf("%s: output not sorted", name)
		}
	}
}
